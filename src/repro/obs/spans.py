"""Hierarchical spans: where the time goes inside one solve.

A :class:`Span` is a named, nestable wall-clock interval with string
attributes, instant events, and child spans — the unit every exporter
(:mod:`repro.obs.export`) understands.  Spans are recorded against a
process-wide :class:`Instrumentation` singleton (:data:`OBS`) that is
**off by default**: when disabled, :func:`span` returns a shared no-op
context manager and the only cost at an instrumentation point is one
attribute check, so the hot paths (``longest_paths``, the executor's
tick loop) stay unencumbered.

Times are ``perf_counter`` seconds relative to the recorder's *epoch*
(set when the recorder is enabled or a :func:`capture` begins), so a
span tree is self-consistent within one process.  Cross-process
stitching — a worker's spans re-parented under the parent's job span —
uses the wall-clock anchor each :class:`Capture` records (see
``repro.engine.jobs.run_job`` / ``repro.engine.runner.BatchRunner``).
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from .metrics import MetricsRegistry

__all__ = ["Span", "Instrumentation", "Capture", "OBS", "enable",
           "disable", "enabled", "reset", "span", "event", "collect",
           "capture", "TRACEPARENT_HEADER", "new_trace_id",
           "new_span_id", "format_traceparent", "parse_traceparent",
           "current_trace_context", "set_trace_context",
           "reset_trace_context"]

#: Hard cap on recorded spans per session (a runaway loop with
#: instrumentation enabled degrades to dropped spans, never to
#: unbounded memory).  Drops are counted in ``obs.spans.dropped``.
MAX_SPANS = 200_000

#: HTTP header carrying the trace context across the wire protocol
#: (W3C Trace Context shape: ``00-<trace_id>-<parent_id>-01``).
TRACEPARENT_HEADER = "traceparent"


# ----------------------------------------------------------------------
# distributed trace context
# ----------------------------------------------------------------------
#
# A trace context is ``(trace_id, parent_span_id | None)``: the 32-hex
# id of the whole distributed trace plus the 16-hex id of the span that
# caused the current work.  It travels ambiently through a ContextVar
# inside one process (surviving ``asyncio.to_thread`` hand-offs) and
# explicitly over process boundaries: the ``traceparent`` HTTP header
# on the wire protocol and the ``runner.trace`` key of shard manifests.

_TRACE_CONTEXT: "ContextVar[tuple[str, str | None] | None]" = \
    ContextVar("repro_trace_context", default=None)


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-character span id."""
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """The ``traceparent`` header value for an outgoing request."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: "str | None") \
        -> "tuple[str, str] | None":
    """``(trace_id, parent_span_id)`` from a header, else ``None``.

    Malformed values are ignored rather than rejected — tracing is
    best-effort and must never fail a request.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    trace_id, span_id = parts[1], parts[2]
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return trace_id, span_id


def current_trace_context() -> "tuple[str, str | None] | None":
    """The ambient ``(trace_id, parent_span_id)``, if any."""
    return _TRACE_CONTEXT.get()


def set_trace_context(context: "tuple[str, str | None] | None"):
    """Install an ambient trace context; returns the reset token."""
    return _TRACE_CONTEXT.set(context)


def reset_trace_context(token) -> None:
    """Restore the context saved by :func:`set_trace_context`."""
    _TRACE_CONTEXT.reset(token)


@dataclass
class Span:
    """One named interval in the trace tree."""

    name: str
    start: float
    end: "float | None" = None
    attrs: "dict[str, Any]" = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    events: "list[dict[str, Any]]" = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) \
            - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def shift(self, offset: float) -> "Span":
        """Translate this subtree in time (re-parenting helper)."""
        self.start += offset
        if self.end is not None:
            self.end += offset
        for evt in self.events:
            evt["at"] = evt.get("at", 0.0) + offset
        for child in self.children:
            child.shift(offset)
        return self

    def walk(self) -> "Iterator[tuple[int, Span]]":
        """Depth-first ``(depth, span)`` pairs, self included."""
        stack: "list[tuple[int, Span]]" = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def to_dict(self) -> "dict[str, Any]":
        doc: "dict[str, Any]" = {
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.events:
            doc["events"] = [
                {"name": evt["name"], "at": round(evt.get("at", 0.0), 6),
                 **({"attrs": evt["attrs"]} if evt.get("attrs") else {})}
                for evt in self.events]
        if self.children:
            doc["children"] = [child.to_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: "dict[str, Any]") -> "Span":
        start = float(doc.get("start", 0.0))
        span_obj = cls(name=doc["name"], start=start,
                       end=start + float(doc.get("duration", 0.0)),
                       attrs=dict(doc.get("attrs", {})))
        span_obj.events = [
            {"name": evt["name"], "at": float(evt.get("at", 0.0)),
             "attrs": dict(evt.get("attrs", {}))}
            for evt in doc.get("events", [])]
        span_obj.children = [cls.from_dict(child)
                             for child in doc.get("children", [])]
        return span_obj


class _NoopSpan:
    """The shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager closing a real span on exit."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "Instrumentation", span_obj: Span):
        self._recorder = recorder
        self._span = span_obj

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._recorder._close(self._span)


class Instrumentation:
    """Per-process span recorder + metrics registry; off by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self._epoch = 0.0
        self._roots: "list[Span]" = []
        self._stack: "list[Span]" = []
        self._count = 0
        self._dropped = 0

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        """Switch recording on with a fresh, empty session."""
        self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans/metrics; keep the enabled flag off."""
        self.enabled = False
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self._roots = []
        self._stack = []
        self._count = 0
        self._dropped = 0

    def now(self) -> float:
        """Seconds since the session epoch."""
        return time.perf_counter() - self._epoch

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; ``with OBS.span("sched.timing") as sp: ...``."""
        if not self.enabled:
            return _NOOP
        if self._count >= MAX_SPANS:
            self._dropped += 1
            self.metrics.counter("obs.spans.dropped").inc()
            return _NOOP
        self._count += 1
        span_obj = Span(name=name, start=self.now(),
                        attrs=dict(attrs) if attrs else {})
        if self._stack:
            self._stack[-1].children.append(span_obj)
        else:
            self._roots.append(span_obj)
        self._stack.append(span_obj)
        return _LiveSpan(self, span_obj)

    def _close(self, span_obj: Span) -> None:
        span_obj.end = self.now()
        # Unwind to (and past) the span being closed; tolerates callers
        # that leak an inner span.
        while self._stack:
            top = self._stack.pop()
            if top is span_obj:
                break
            if top.end is None:
                top.end = span_obj.end

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event on the currently-open span."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].events.append(
            {"name": name, "at": self.now(),
             "attrs": dict(attrs) if attrs else {}})

    def attach(self, span_obj: Span) -> None:
        """Adopt an externally-built span (a re-parented worker tree)."""
        if self._stack:
            self._stack[-1].children.append(span_obj)
        else:
            self._roots.append(span_obj)

    # -- extraction ----------------------------------------------------

    def collect(self) -> "list[Span]":
        """The root spans recorded so far (open spans closed at now)."""
        for open_span in self._stack:
            if open_span.end is None:
                open_span.end = self.now()
        return list(self._roots)

    def capture(self) -> "Capture":
        """Run a nested, isolated recording session (see below)."""
        return Capture(self)


class Capture:
    """Isolated recording session — the worker-process span shipper.

    ``with OBS.capture() as cap:`` swaps in a fresh enabled session
    (epoch = now) and restores the previous state on exit.  The spans
    recorded inside are available as ``cap.spans`` (times relative to
    the capture start), the metric increments as ``cap.metrics_data``,
    and ``cap.wall0`` anchors the capture on the shared wall clock so a
    parent process can re-base the tree onto its own timeline.
    """

    def __init__(self, recorder: Instrumentation):
        self._recorder = recorder
        self._saved: "tuple | None" = None
        self.wall0 = 0.0
        self.spans: "list[Span]" = []
        self.metrics_data: "dict[str, Any]" = {}

    def __enter__(self) -> "Capture":
        rec = self._recorder
        self._saved = (rec.enabled, rec.metrics, rec._epoch, rec._roots,
                       rec._stack, rec._count, rec._dropped)
        rec.enabled = True
        rec.metrics = MetricsRegistry()
        rec._epoch = time.perf_counter()
        rec._roots = []
        rec._stack = []
        rec._count = 0
        rec._dropped = 0
        self.wall0 = time.time()
        return self

    def __exit__(self, *exc_info) -> None:
        rec = self._recorder
        self.spans = rec.collect()
        self.metrics_data = rec.metrics.data()
        (rec.enabled, rec.metrics, rec._epoch, rec._roots, rec._stack,
         rec._count, rec._dropped) = self._saved


#: The process-wide recorder every instrumentation point talks to.
OBS = Instrumentation()

# Module-level conveniences bound to the singleton.


def enable() -> None:
    """Turn recording on for the process-wide :data:`OBS` singleton."""
    OBS.enable()


def disable() -> None:
    """Turn recording off for the process-wide :data:`OBS` singleton."""
    OBS.disable()


def enabled() -> bool:
    """Is the process-wide :data:`OBS` singleton recording?"""
    return OBS.enabled


def reset() -> None:
    """Drop all spans and metrics recorded by :data:`OBS` so far."""
    OBS.reset()


def span(name: str, **attrs: Any):
    """Open a span on :data:`OBS` (a no-op stub while disabled)."""
    return OBS.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a zero-duration span on :data:`OBS`."""
    OBS.event(name, **attrs)


def collect() -> "list[Span]":
    """Detach and return the finished root spans of :data:`OBS`."""
    return OBS.collect()


def capture() -> Capture:
    """An isolated recording session on :data:`OBS` (worker shipper)."""
    return OBS.capture()
