"""The scheduling problem container.

A :class:`SchedulingProblem` bundles everything the power-aware
scheduler needs:

* the constraint graph (tasks + min/max separations + resource map),
* the hard max power constraint ``P_max`` (supply budget),
* the soft min power constraint ``P_min`` (free-power level),
* a constant ``baseline`` load (always-on consumers like the rover CPU).

The problem owns *user* constraints only; schedulers work on a private
copy of the graph, so a problem can be solved repeatedly under different
power constraints (the essence of power-aware design-space exploration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import GraphError
from .graph import ConstraintGraph

__all__ = ["SchedulingProblem"]


@dataclass
class SchedulingProblem:
    """A power-aware scheduling problem instance."""

    graph: ConstraintGraph
    p_max: float
    p_min: float = 0.0
    baseline: float = 0.0
    name: str = ""
    meta: "Mapping[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.p_max < 0:
            raise GraphError(f"P_max must be >= 0, got {self.p_max}")
        if self.p_min < 0:
            raise GraphError(f"P_min must be >= 0, got {self.p_min}")
        if self.p_min > self.p_max:
            raise GraphError(
                f"P_min ({self.p_min}) must not exceed P_max "
                f"({self.p_max}); the window would be empty")
        if self.baseline < 0:
            raise GraphError(
                f"baseline power must be >= 0, got {self.baseline}")
        if not self.name:
            self.name = self.graph.name

    @property
    def total_baseline(self) -> float:
        """Baseline plus declared resource idle power."""
        return self.baseline + self.graph.resources.total_idle_power

    @property
    def has_operating_points(self) -> bool:
        """True when any task carries a DVFS operating-point ladder.

        Such problems get their configuration chosen by the
        ``freq_select`` search, and are exempt from schedule-store
        certification (see DESIGN.md section 5f): the search's output
        depends on ``P_max``, so no timing-stage entry could be valid
        over a whole power rectangle.
        """
        return any(task.has_ladder for task in self.graph.tasks())

    def headroom(self) -> float:
        """Power budget left above the constant baseline."""
        return self.p_max - self.total_baseline

    def feasible_power_check(self) -> "list[str]":
        """Quick necessary-condition screen before scheduling.

        Returns human-readable reasons the problem is trivially
        power-infeasible: a single task (plus baseline) already above
        ``P_max`` can never be scheduled.  An empty list does not prove
        feasibility.
        """
        reasons = []
        if self.total_baseline > self.p_max:
            reasons.append(
                f"baseline load {self.total_baseline:g} W exceeds "
                f"P_max = {self.p_max:g} W")
        for task in self.graph.tasks():
            if task.duration > 0 and \
                    task.power + self.total_baseline > self.p_max:
                reasons.append(
                    f"task {task.name!r} needs "
                    f"{task.power + self.total_baseline:g} W "
                    f"(with baseline) > P_max = {self.p_max:g} W")
        return reasons

    def with_power_constraints(self, p_max: float,
                               p_min: float) -> "SchedulingProblem":
        """The same workload under different power constraints.

        The graph is shared (schedulers copy it anyway); this is the
        cheap way to sweep the (P_max, P_min) plane.
        """
        return SchedulingProblem(graph=self.graph, p_max=p_max,
                                 p_min=p_min, baseline=self.baseline,
                                 name=self.name, meta=dict(self.meta))

    def fresh_graph(self) -> ConstraintGraph:
        """A private copy of the constraint graph for a scheduler run."""
        return self.graph.copy()

    def __repr__(self) -> str:
        return (f"SchedulingProblem({self.name!r}, tasks={len(self.graph)}, "
                f"P_max={self.p_max:g}, P_min={self.p_min:g}, "
                f"baseline={self.baseline:g})")
