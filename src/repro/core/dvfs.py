"""Operating-point (DVFS x multi-core) scaling model and helpers.

This module is the single home of the frequency-scaling arithmetic the
whole tool agrees on.  A task running at an operating point
``(freq, cores)`` with ``0 < freq <= 1`` and ``cores >= 1``:

* **stretches** its delay by ``1 / (freq * cores)`` — the classic DVS
  ``1/f`` slowdown, with extra cores dividing the remaining work
  (the EAPS-style ``(freq, cores)`` configuration model);
* **scales** its instantaneous power by ``freq**3 * cores`` — the cubic
  voltage/frequency law (``P ~ f V^2`` with ``V ~ f``) times the active
  core count;
* so its energy scales by roughly ``freq**2`` per core — the quadratic
  saving that motivates DVS in the first place.

Rounding rule (the integer-grid caveat): delays live on the integer
time grid, so the stretched delay is ``ceil(d / (freq * cores))`` (a
zero-duration milestone stays zero).  The *realized* energy of a scaled
task is therefore ``ceil(d / (f*c)) * quantize(p * f**3 * c)`` — equal
to the ideal ``d * p * f**2 / c`` only when the stretch divides evenly.
Reports that quote the cubic law carry both numbers.

Power quantization: scaled powers are snapped to a fixed 1 microwatt
decimal grid by :func:`quantize_power` — one shared, deterministic
rounding used by every scaler (the :class:`~repro.scheduling.dvs.
DvsScheduler` baseline and the :mod:`repro.scheduling.freq_select`
search alike), so canonical problem hashes
(:func:`~repro.engine.hashing.problem_base_key`) and schedule-store
keys built from scaled problems are stable across platforms and code
paths.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..errors import GraphError
from .graph import ConstraintGraph
from .problem import SchedulingProblem
from .task import ANCHOR_NAME, OperatingPoint, Task

__all__ = ["DEFAULT_LADDER", "POWER_DECIMALS", "quantize_power",
           "scaled_power", "scaled_duration", "ladder_from_freqs",
           "attach_ladder", "materialize_assignment"]

#: Decimal places of the shared power-quantization grid (1 microwatt).
POWER_DECIMALS = 6

#: The classic four-rung frequency ladder (single core).
DEFAULT_LADDER = (1.0, 0.75, 0.5, 0.25)


def quantize_power(value: float) -> float:
    """Snap a power value to the shared microwatt decimal grid.

    ``round(x, 6)`` in CPython is correctly rounded on the decimal
    representation of the IEEE-754 double, so the result is a pure
    deterministic function of the input bits — the same on every
    platform and in every process.  Every scaled power in the codebase
    must pass through here (never an ad-hoc ``round``), so two code
    paths scaling the same task at the same point produce bit-equal
    floats, and with them bit-equal canonical hashes.
    """
    return round(float(value), POWER_DECIMALS)


def scaled_power(power: float, freq: float, cores: int = 1) -> float:
    """Cubic-law instantaneous power at ``(freq, cores)``, quantized."""
    return quantize_power(power * freq ** 3 * cores)


def scaled_duration(duration: int, freq: float, cores: int = 1) -> int:
    """The ``1/(f*c)``-stretched integer delay (zero stays zero).

    Rounds *up* to the next integer time unit, so a slowed task never
    finishes earlier than the continuous model says it could.
    """
    if duration == 0:
        return 0
    return max(1, math.ceil(duration / (freq * cores)))


def ladder_from_freqs(freqs: "Iterable[float]",
                      cores: "Iterable[int]" = (1,)) \
        -> "tuple[OperatingPoint, ...]":
    """The cross product of frequency rungs and core counts.

    The full-speed reference point ``(1.0, 1 core)`` must be in the
    result — the search starts there, and it is what makes a ladder
    problem's full-speed solve bit-identical to the frequency-free one.
    """
    points = tuple(OperatingPoint(freq=float(freq), cores=int(count))
                   for freq in freqs for count in cores)
    if not any(point.is_full_speed for point in points):
        raise GraphError(
            "an operating-point ladder must include the full-speed "
            "reference point (freq=1.0, cores=1)")
    return points


def attach_ladder(problem: SchedulingProblem,
                  freqs: "Iterable[float]",
                  cores: "Iterable[int]" = (1,),
                  resources: "Iterable[str] | None" = None) \
        -> SchedulingProblem:
    """The same problem with a uniform operating-point ladder attached.

    Every non-milestone task (duration > 0) gains the
    ``freqs x cores`` ladder; with ``resources`` given, only tasks on
    one of those resources do (e.g. only the CPU is voltage-scalable).
    Constraints, resources, power environment, and metadata are carried
    over unchanged — attaching a ladder never changes what the problem
    *means* at full speed, only what the scheduler is allowed to do
    about it.
    """
    ladder = ladder_from_freqs(freqs, cores)
    wanted = None if resources is None else set(resources)

    def pick(task: Task) -> Task:
        if task.duration == 0:
            return task
        if wanted is not None and task.resource not in wanted:
            return task
        from dataclasses import replace
        return replace(task, operating_points=ladder)

    graph = _rebuild_graph(problem.graph, pick)
    return SchedulingProblem(graph=graph, p_max=problem.p_max,
                             p_min=problem.p_min,
                             baseline=problem.baseline,
                             name=problem.name, meta=dict(problem.meta))


def materialize_assignment(problem: SchedulingProblem,
                           assignment: "Mapping[str, OperatingPoint]") \
        -> SchedulingProblem:
    """The concrete problem a configuration choice induces.

    Every ladder task named in ``assignment`` is replaced by its scaled
    copy (:meth:`~repro.core.task.Task.at_point`); tasks at the
    full-speed point come back bit-identical to a ladder-free task.
    The scaled graph is an *ordinary* constraint graph — no operating
    points survive materialization, so the paper's schedulers (and the
    kernel fast path and warm pool under them) run on it unchanged.

    Edge adjustment — the deadline-safety rule.  Separation edges are
    start-to-start and carry weights computed at build time from
    full-speed delays (``add_precedence`` bakes in ``d(src)``,
    ``add_finish_deadline`` bakes in ``D - d(v)``), so a stretched
    task's edges must move with it:

    * every *duration-anchored* min-separation out of a scaled task —
      positive weight ``>= `` its full-speed delay, i.e. an
      end-to-start precedence in start-to-start clothing — is shifted
      by the delay change, preserving "starts after ``src``
      *finishes*" exactly;
    * every deadline bound out of a scaled task (a negative-weight
      edge to the anchor) is *tightened* by the delay increase,
      treating it as a finish deadline — conservative for genuine
      start deadlines (it can only reject a slowdown, never admit a
      late finish);
    * start-to-start separations shorter than the delay (e.g. the
      rover's "heat 5..50 s before steering" windows) are
      speed-independent and stay verbatim.

    At the full-speed point every shift is zero and the materialized
    problem is bit-identical to the input minus its ladders.
    """
    deltas: "dict[str, int]" = {}

    def pick(task: Task) -> Task:
        point = assignment.get(task.name)
        if point is None or not task.operating_points:
            return task
        if point.key not in {p.key for p in task.operating_points}:
            raise GraphError(
                f"task {task.name!r} has no operating point "
                f"{point.key}; its ladder is "
                f"{[p.key for p in task.operating_points]}")
        scaled = task.at_point(point)
        delta = scaled.duration - task.duration
        if delta:
            deltas[task.name] = delta
        return scaled

    def adjust(src: str, dst: str, weight: int, task: "Task | None") \
            -> int:
        delta = deltas.get(src)
        if not delta or task is None:
            return weight
        if weight >= task.duration and dst != ANCHOR_NAME:
            return weight + delta       # duration-anchored precedence
        if weight < 0 and dst == ANCHOR_NAME:
            return weight + delta       # deadline, finish-safe tighten
        return weight

    graph = _rebuild_graph(problem.graph, pick, adjust)
    return SchedulingProblem(graph=graph, p_max=problem.p_max,
                             p_min=problem.p_min,
                             baseline=problem.baseline,
                             name=problem.name, meta=dict(problem.meta))


def _rebuild_graph(source: ConstraintGraph, pick,
                   adjust=None) -> ConstraintGraph:
    """Copy a graph through a per-task transform (same name, edges,
    resources; ``adjust`` optionally rewrites edge weights given the
    *original* source task)."""
    graph = ConstraintGraph(source.name)
    for resource in source.resources:
        graph.declare_resource(resource)
    originals = {task.name: task for task in source.tasks()}
    for task in source.tasks():
        graph.add_task(pick(task))
    for edge in source.edges():
        weight = edge.weight
        if adjust is not None:
            weight = adjust(edge.src, edge.dst, weight,
                            originals.get(edge.src))
        graph.add_edge(edge.src, edge.dst, weight, tag=edge.tag)
    return graph
