"""Task model: the vertices of the constraint graph.

Each task ``v`` carries the three attributes of the paper's Section 4.1:

* ``d(v)`` — execution delay (integer time units; the paper's instances
  are in whole seconds and an integer grid keeps all arithmetic exact),
* ``p(v)`` — power consumption in watts while the task executes (the
  paper assumes a single exact value; min/typ/max tables are handled one
  case at a time, as in the rover study),
* ``r(v)`` — the execution resource the task is mapped onto.

Tasks are non-preemptive: once started at ``sigma(v)`` a task occupies
its resource for exactly ``d(v)`` time units and consumes ``p(v)`` watts
throughout, so its energy is ``d(v) * p(v)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..errors import GraphError

__all__ = ["Task", "ANCHOR_NAME"]

#: Name reserved for the virtual anchor task that starts at time 0.
ANCHOR_NAME = "__anchor__"


@dataclass(frozen=True)
class Task:
    """A non-preemptive task (a vertex of the constraint graph).

    Parameters
    ----------
    name:
        Unique identifier within a problem.
    duration:
        Execution delay ``d(v)`` in integer time units, ``>= 0``.
        Zero-duration tasks are permitted (they are useful as milestones)
        but consume no energy and occupy no resource time.
    power:
        Power draw ``p(v)`` in watts while executing, ``>= 0``.
    resource:
        Name of the execution resource ``r(v)``.  Two tasks mapped to the
        same resource must be serialized by the scheduler.  ``None``
        means the task needs no exclusive resource (e.g. a milestone).
    meta:
        Free-form annotations (ignored by the algorithms; carried through
        serialization so models like the rover can tag tasks with the
        subsystem they belong to).
    """

    name: str
    duration: int
    power: float = 0.0
    resource: "str | None" = None
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("task name must be a non-empty string")
        if not isinstance(self.duration, int):
            raise GraphError(
                f"task {self.name!r}: duration must be an integer number of "
                f"time units, got {self.duration!r}")
        if self.duration < 0:
            raise GraphError(
                f"task {self.name!r}: duration must be >= 0, "
                f"got {self.duration}")
        if self.power < 0:
            raise GraphError(
                f"task {self.name!r}: power must be >= 0, got {self.power}")

    @property
    def energy(self) -> float:
        """Energy consumed by one execution: ``d(v) * p(v)`` joules."""
        return self.duration * self.power

    @property
    def is_anchor(self) -> bool:
        """True for the virtual anchor vertex (start of time)."""
        return self.name == ANCHOR_NAME

    def renamed(self, new_name: str) -> "Task":
        """Return a copy of this task under a different name.

        Used by graph-composition utilities (e.g. loop unrolling in the
        rover model) that instantiate the same template task several
        times.
        """
        return replace(self, name=new_name)

    def with_power(self, power: float) -> "Task":
        """Return a copy with a different power draw.

        The rover tables give per-temperature power values for the same
        operation; the model instantiates one case at a time.
        """
        return replace(self, power=power)

    @staticmethod
    def anchor() -> "Task":
        """The virtual source vertex: starts at time 0, zero cost."""
        return Task(name=ANCHOR_NAME, duration=0, power=0.0, resource=None)
