"""Task model: the vertices of the constraint graph.

Each task ``v`` carries the three attributes of the paper's Section 4.1:

* ``d(v)`` — execution delay (integer time units; the paper's instances
  are in whole seconds and an integer grid keeps all arithmetic exact),
* ``p(v)`` — power consumption in watts while the task executes (the
  paper assumes a single exact value; min/typ/max tables are handled one
  case at a time, as in the rover study),
* ``r(v)`` — the execution resource the task is mapped onto.

Tasks are non-preemptive: once started at ``sigma(v)`` a task occupies
its resource for exactly ``d(v)`` time units and consumes ``p(v)`` watts
throughout, so its energy is ``d(v) * p(v)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..errors import GraphError

__all__ = ["Task", "OperatingPoint", "ANCHOR_NAME"]

#: Name reserved for the virtual anchor task that starts at time 0.
ANCHOR_NAME = "__anchor__"


@dataclass(frozen=True)
class OperatingPoint:
    """One rung of a task's DVFS ladder: a ``(freq, cores)`` pair.

    At ``freq`` (normalized to the full-speed clock, ``0 < freq <= 1``)
    on ``cores`` parallel cores, the task's delay stretches to
    ``ceil(d / (freq * cores))`` and its power scales to
    ``p * freq**3 * cores`` — the cubic voltage/frequency law.  The
    scaling arithmetic itself lives in :mod:`repro.core.dvfs`; this
    class is just the point.

    ``(freq=1.0, cores=1)`` is the *full-speed reference point*: a task
    scaled to it is bit-identical to the same task with no ladder at
    all, which is what keeps ladder-free and full-speed solves
    interchangeable.
    """

    freq: float = 1.0
    cores: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.freq, (int, float)) or \
                isinstance(self.freq, bool):
            raise GraphError(
                f"operating point: freq must be a number, got "
                f"{self.freq!r}")
        if not 0.0 < float(self.freq) <= 1.0:
            raise GraphError(
                f"operating point: freq must be in (0, 1], got "
                f"{self.freq!r}")
        if not isinstance(self.cores, int) or isinstance(self.cores, bool):
            raise GraphError(
                f"operating point: cores must be an integer, got "
                f"{self.cores!r}")
        if self.cores < 1:
            raise GraphError(
                f"operating point: cores must be >= 1, got {self.cores}")
        object.__setattr__(self, "freq", float(self.freq))

    @property
    def is_full_speed(self) -> bool:
        """True for the ``(1.0, 1)`` reference point."""
        return self.freq == 1.0 and self.cores == 1

    @property
    def key(self) -> "tuple[float, int]":
        """Canonical ``(freq, cores)`` tuple (hashing, wire formats)."""
        return (self.freq, self.cores)

    def __str__(self) -> str:
        return f"f={self.freq:g}x{self.cores}"


@dataclass(frozen=True)
class Task:
    """A non-preemptive task (a vertex of the constraint graph).

    Parameters
    ----------
    name:
        Unique identifier within a problem.
    duration:
        Execution delay ``d(v)`` in integer time units, ``>= 0``.
        Zero-duration tasks are permitted (they are useful as milestones)
        but consume no energy and occupy no resource time.
    power:
        Power draw ``p(v)`` in watts while executing, ``>= 0``.
    resource:
        Name of the execution resource ``r(v)``.  Two tasks mapped to the
        same resource must be serialized by the scheduler.  ``None``
        means the task needs no exclusive resource (e.g. a milestone).
    meta:
        Free-form annotations (ignored by the algorithms; carried through
        serialization so models like the rover can tag tasks with the
        subsystem they belong to).
    operating_points:
        Optional DVFS ladder: the :class:`OperatingPoint` configurations
        this task may legally run at.  Empty (the default) means the
        task is speed-fixed — exactly today's model.  A non-empty ladder
        must include the full-speed ``(1.0, 1)`` reference point, and
        ``duration``/``power`` always describe the task *at* that
        reference point; scaled variants are derived via
        :meth:`at_point`.
    """

    name: str
    duration: int
    power: float = 0.0
    resource: "str | None" = None
    meta: Mapping[str, Any] = field(default_factory=dict)
    operating_points: "tuple[OperatingPoint, ...]" = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("task name must be a non-empty string")
        if not isinstance(self.duration, int):
            raise GraphError(
                f"task {self.name!r}: duration must be an integer number of "
                f"time units, got {self.duration!r}")
        if self.duration < 0:
            raise GraphError(
                f"task {self.name!r}: duration must be >= 0, "
                f"got {self.duration}")
        if self.power < 0:
            raise GraphError(
                f"task {self.name!r}: power must be >= 0, got {self.power}")
        if self.operating_points:
            points = tuple(self.operating_points)
            object.__setattr__(self, "operating_points", points)
            seen = set()
            for point in points:
                if not isinstance(point, OperatingPoint):
                    raise GraphError(
                        f"task {self.name!r}: operating_points must hold "
                        f"OperatingPoint instances, got {point!r}")
                if point.key in seen:
                    raise GraphError(
                        f"task {self.name!r}: duplicate operating point "
                        f"{point.key}")
                seen.add(point.key)
            if not any(point.is_full_speed for point in points):
                raise GraphError(
                    f"task {self.name!r}: a non-empty operating-point "
                    f"ladder must include the full-speed reference point "
                    f"(freq=1.0, cores=1)")

    @property
    def energy(self) -> float:
        """Energy consumed by one execution: ``d(v) * p(v)`` joules."""
        return self.duration * self.power

    @property
    def is_anchor(self) -> bool:
        """True for the virtual anchor vertex (start of time)."""
        return self.name == ANCHOR_NAME

    @property
    def has_ladder(self) -> bool:
        """True when this task carries a DVFS operating-point ladder."""
        return bool(self.operating_points)

    def at_point(self, point: OperatingPoint) -> "Task":
        """This task materialized at one operating point (ladder dropped).

        The full-speed reference point returns the task bit-identical
        except for the dropped ladder — no arithmetic touches duration
        or power, so full-speed materialization is exact, not merely
        close.  Any other point stretches the delay by
        ``1/(freq*cores)`` (rounded up to the integer grid) and scales
        the power by ``freq**3 * cores`` (quantized by the shared
        :func:`repro.core.dvfs.quantize_power` grid), and records the
        chosen point in ``meta`` (``dvfs_freq``/``dvfs_cores``) for
        reports and round-trips.
        """
        if point.is_full_speed:
            return replace(self, operating_points=())
        from .dvfs import scaled_duration, scaled_power
        meta = dict(self.meta)
        meta["dvfs_freq"] = point.freq
        meta["dvfs_cores"] = point.cores
        return replace(
            self,
            duration=scaled_duration(self.duration, point.freq, point.cores),
            power=scaled_power(self.power, point.freq, point.cores),
            meta=meta,
            operating_points=())

    def renamed(self, new_name: str) -> "Task":
        """Return a copy of this task under a different name.

        Used by graph-composition utilities (e.g. loop unrolling in the
        rover model) that instantiate the same template task several
        times.
        """
        return replace(self, name=new_name)

    def with_power(self, power: float) -> "Task":
        """Return a copy with a different power draw.

        The rover tables give per-temperature power values for the same
        operation; the model instantiates one case at a time.
        """
        return replace(self, power=power)

    @staticmethod
    def anchor() -> "Task":
        """The virtual source vertex: starts at time 0, zero cost."""
        return Task(name=ANCHOR_NAME, duration=0, power=0.0, resource=None)
