"""Constraint graph ``G(V, E)`` with min/max timing separations.

This is the input formulation of the paper (Section 4.1), which extends
the time-driven scheduling model of Chou & Borriello.  Vertices are
:class:`~repro.core.task.Task` objects; a weighted directed edge
``(u, v, w)`` asserts the *start-to-start* separation

    ``sigma(v) - sigma(u) >= w``.

* A **min separation** "v at least w after u" is a forward edge
  ``(u, v, +w)``.
* A **max separation** "v at most w after u" is a backward edge
  ``(v, u, -w)`` (rewriting ``sigma(v) <= sigma(u) + w``).

Min/max separations subsume release times, deadlines, and precedence
(end-to-start) dependencies; convenience methods express all of these.
A virtual **anchor** vertex starting at time 0 closes the system: every
task implicitly satisfies ``sigma(v) >= sigma(anchor) = 0``.

The graph supports *checkpoint/rollback* so the backtracking schedulers
of Section 5 can speculatively add serialization, delay, and lock edges
and undo them cheaply when a branch fails.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Iterable, Iterator, Mapping

from ..errors import GraphError
from .resource import Resource, ResourcePool
from .task import ANCHOR_NAME, Task

__all__ = ["Edge", "ConstraintGraph", "ADD_LOG_FACTOR",
           "add_log_factor", "set_add_log_factor"]

#: Sentinel for "no constraint" when querying separations.
_NO_EDGE = object()

#: Default trim bound multiplier for the incremental-longest-path add
#: log: ``add_edge`` trims ``_add_log`` once it exceeds
#: ``factor * (tasks + 8)`` entries.  Larger factors keep more history
#: (stale longest-path caches stay on the incremental fast path longer)
#: at the cost of memory; trimming can only cost speed, never
#: correctness.  Override per run with :func:`set_add_log_factor` or the
#: ``lp_log_factor`` field of ``repro.engine.RunnerConfig``.
ADD_LOG_FACTOR = 4

_add_log_factor = ADD_LOG_FACTOR

# Per-process counter for graph identities.  Combined with the pid it
# forms a warm-pool key that cannot collide across processes — an
# unpickled graph regenerates its uid (see ``__setstate__``), so two
# workers can never serve each other stale fixpoints.
_uid_counter = itertools.count()


def add_log_factor() -> int:
    """The process-wide add-log trim bound multiplier currently in force."""
    return _add_log_factor


def set_add_log_factor(factor: "int | None") -> int:
    """Set the add-log trim bound multiplier; returns the previous value.

    ``None`` restores the default (:data:`ADD_LOG_FACTOR`).  The factor
    must be a positive integer.  Per-process state: worker processes
    each set their own copy (see ``repro.engine.jobs.run_job``).
    """
    global _add_log_factor
    if factor is None:
        factor = ADD_LOG_FACTOR
    if not isinstance(factor, int) or isinstance(factor, bool) \
            or factor < 1:
        raise GraphError(
            f"add-log factor must be a positive integer, got {factor!r}")
    previous = _add_log_factor
    _add_log_factor = factor
    return previous


@dataclass(frozen=True)
class Edge:
    """A start-to-start separation ``sigma(dst) - sigma(src) >= weight``.

    ``tag`` records why the edge exists ("user", "serialize", "delay",
    "lock", ...) which makes scheduler traces and Gantt annotations much
    easier to read, and lets rollback-free callers strip a category of
    derived edges.
    """

    src: str
    dst: str
    weight: int
    tag: str = "user"

    @property
    def is_forward(self) -> bool:
        """True for non-negative weights (min separations / precedences)."""
        return self.weight >= 0


class ConstraintGraph:
    """Mutable constraint graph with checkpoint/rollback.

    Between a pair ``(u, v)`` only the *tightest* separation matters, so
    the graph stores at most one edge per ordered pair, keeping the
    maximum weight seen.  All mutations are journaled; ``checkpoint()``
    returns a token and ``rollback(token)`` restores the exact prior
    edge set.  Tasks are append-only (the schedulers never remove
    vertices).
    """

    def __init__(self, name: str = "problem"):
        self.name = name
        self._tasks: "dict[str, Task]" = {}
        self._resources = ResourcePool()
        # (src, dst) -> (weight, tag)
        self._edges: "dict[tuple[str, str], tuple[int, str]]" = {}
        # adjacency caches (maintained incrementally)
        self._out: "dict[str, set[str]]" = {}
        self._in: "dict[str, set[str]]" = {}
        # journal of (key, previous_value_or_None) for rollback
        self._journal: "list[tuple[tuple[str, str], tuple[int, str] | None]]" = []
        # edge-set version + cached flat triples (hot path for the
        # longest-path solver, which runs once per scheduler move)
        self._version = 0
        self._triples_cache: "tuple[int, list[tuple[str, str, int]]] | None" = None
        # incremental longest-path support: the version of the last
        # non-monotone mutation (removal/rollback — anything that can
        # *decrease* a distance), and a log of recent edge additions so
        # the solver can propagate just the delta.  The solver owns the
        # attached cache (see repro.core.longest_path).
        self._last_non_add_version = 0
        self._add_log: "list[tuple[int, str, str, int]]" = []
        self._lp_cache = None
        # struct-of-arrays view cache (repro.core.arrays) — version-keyed
        self._arrays_cache = None
        # warm-start support (repro.core.longest_path): memoized
        # fixpoints keyed by journal length so rollback lands on an
        # already-solved state, plus the identity of the graph this one
        # was copied from (and our version right after the copy) so
        # sibling copies share fixpoints through the kernel warm pool.
        self._state_cache: "dict[int, tuple[int, dict, dict]]" = {}
        self._uid = (os.getpid(), next(_uid_counter))
        self._warm_src: "tuple[tuple[int, int], int] | None" = None
        self._warm_at_version = 0
        self.add_task(Task.anchor())

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Add a task vertex.  Duplicate names are an error."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        self._out.setdefault(task.name, set())
        self._in.setdefault(task.name, set())
        if task.resource is not None:
            self._resources.ensure(task.resource)
        return task

    def new_task(self, name: str, duration: int, power: float = 0.0,
                 resource: "str | None" = None,
                 meta: "Mapping[str, Any] | None" = None,
                 operating_points: "tuple | None" = None) -> Task:
        """Create and add a task in one call; returns the task."""
        return self.add_task(Task(name=name, duration=duration, power=power,
                                  resource=resource, meta=dict(meta or {}),
                                  operating_points=tuple(
                                      operating_points or ())))

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r}") from None

    def set_duration(self, name: str, duration: int) -> Task:
        """Replace a task's duration in place (working copies only).

        Mid-mission replanning represents a still-running overrunning
        task by its *realized* duration so the schedulers' resource
        exclusion and power profile see the stretched reality, not the
        nominal plan.  Durations feed the solvers but not the edge set,
        so longest-path distances stay valid; power/energy and array
        caches are version-keyed, so the bump below invalidates them.
        Not journaled — use on throwaway copies, not on a graph a later
        ``rollback`` must restore.
        """
        task = self.task(name)
        if task.is_anchor:
            raise GraphError("cannot set the anchor's duration")
        if not isinstance(duration, int) or isinstance(duration, bool) \
                or duration <= 0:
            raise GraphError(
                f"duration must be a positive integer, got {duration!r}")
        if duration == task.duration:
            return task
        replaced = _dc_replace(task, duration=duration)
        self._tasks[name] = replaced
        self._version += 1
        self._arrays_cache = None
        self._triples_cache = None
        return replaced

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def anchor(self) -> Task:
        """The virtual time-0 source vertex."""
        return self._tasks[ANCHOR_NAME]

    def tasks(self, include_anchor: bool = False) -> "list[Task]":
        """All task vertices, in insertion order."""
        return [t for t in self._tasks.values()
                if include_anchor or not t.is_anchor]

    def task_names(self, include_anchor: bool = False) -> "list[str]":
        """All vertex names, in insertion order."""
        return [t.name for t in self.tasks(include_anchor=include_anchor)]

    def __len__(self) -> int:
        """Number of real (non-anchor) tasks."""
        return len(self._tasks) - 1

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------

    @property
    def resources(self) -> ResourcePool:
        """The resource pool (auto-populated from task mappings)."""
        return self._resources

    def declare_resource(self, resource: Resource) -> Resource:
        """Pre-register a resource (e.g. to set idle power or row order)."""
        if resource.name in self._resources:
            raise GraphError(f"duplicate resource {resource.name!r}")
        return self._resources.add(resource)

    def tasks_on(self, resource: str) -> "list[Task]":
        """Tasks mapped to the named resource, in insertion order."""
        return [t for t in self.tasks() if t.resource == resource]

    def resource_conflicts(self) -> "Iterator[tuple[Task, Task]]":
        """Yield unordered pairs of distinct tasks sharing a resource."""
        by_res: "dict[str, list[Task]]" = {}
        for t in self.tasks():
            if t.resource is not None:
                by_res.setdefault(t.resource, []).append(t)
        for group in by_res.values():
            for i, u in enumerate(group):
                for v in group[i + 1:]:
                    yield u, v

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def add_edge(self, src: str, dst: str, weight: int,
                 tag: str = "user") -> bool:
        """Assert ``sigma(dst) - sigma(src) >= weight``.

        Keeps only the tightest (maximum-weight) constraint per ordered
        pair.  Returns True if the edge set actually changed (a looser
        constraint than an existing one is a no-op).  Self-edges with
        positive weight are immediately contradictory and rejected.
        """
        if src not in self._tasks:
            raise GraphError(f"unknown task {src!r}")
        if dst not in self._tasks:
            raise GraphError(f"unknown task {dst!r}")
        if not isinstance(weight, int):
            raise GraphError(
                f"edge {src!r}->{dst!r}: weight must be an integer, "
                f"got {weight!r}")
        if src == dst:
            if weight > 0:
                raise GraphError(
                    f"self-separation sigma({src}) - sigma({src}) >= "
                    f"{weight} is unsatisfiable")
            return False  # trivially true
        key = (src, dst)
        prev = self._edges.get(key)
        if prev is not None and prev[0] >= weight:
            return False
        self._journal.append((key, prev))
        self._edges[key] = (weight, tag)
        self._out[src].add(dst)
        self._in[dst].add(src)
        self._version += 1
        self._add_log.append((self._version, src, dst, weight))
        if len(self._add_log) > _add_log_factor * (len(self._tasks) + 8):
            # Bounded log: drop the older half.  The longest-path solver
            # only takes its incremental fast path when the log covers
            # *every* version since its cache (it checks
            # ``len(adds) == _version - cache_version``); trimming makes
            # that check fail for caches older than the retained window,
            # forcing a full recompute.  This keeps memory flat and can
            # only cost speed, never correctness — see
            # repro.core.longest_path.longest_paths for the invariants.
            del self._add_log[:len(self._add_log) // 2]
        return True

    def separation(self, src: str, dst: str) -> "int | None":
        """The asserted minimum of ``sigma(dst) - sigma(src)``, if any."""
        entry = self._edges.get((src, dst))
        return entry[0] if entry is not None else None

    def edge_tag(self, src: str, dst: str) -> "str | None":
        """The tag of the stored ``src -> dst`` edge, if any."""
        entry = self._edges.get((src, dst))
        return entry[1] if entry is not None else None

    def remove_edge(self, src: str, dst: str) -> bool:
        """Remove the stored ``src -> dst`` edge (journaled).

        Returns False when no such edge exists.  Used by the compaction
        pass to relax scheduler-added delay edges; rollback restores
        removed edges like any other journaled mutation.
        """
        key = (src, dst)
        prev = self._edges.get(key)
        if prev is None:
            return False
        self._journal.append((key, prev))
        del self._edges[key]
        self._out[src].discard(dst)
        self._in[dst].discard(src)
        self._version += 1
        self._last_non_add_version = self._version
        return True

    def weaken_edge(self, src: str, dst: str) -> bool:
        """Undo every journaled tightening of ``src -> dst`` (journaled).

        Because the graph keeps only the tightest separation per ordered
        pair, a scheduler edge (``delay``/``lock``/...) that lands on a
        pair already carrying a *user* constraint silently **overwrites**
        it — and the compaction/unlock passes used to ``remove_edge`` the
        pair outright, dropping the user's release or deadline with it.
        This restores the value the pair had *before the first journaled
        mutation* instead: the user constraint survives, while an edge
        the scheduler created from nothing (oldest journaled prior is
        ``None``) is removed exactly as before.  Falls back to plain
        removal when the journal holds no history for the pair.

        Returns True if the edge set changed.
        """
        key = (src, dst)
        current = self._edges.get(key)
        if current is None:
            return False
        original = _NO_EDGE
        for entry_key, prev in self._journal:
            if entry_key == key:
                original = prev
                break
        if original is _NO_EDGE or original is None:
            # No journaled history (pair predates this episode's journal)
            # or the pair genuinely had no edge before: drop it.
            return self.remove_edge(src, dst)
        if original == current:
            return False
        self._journal.append((key, current))
        self._edges[key] = original
        self._version += 1
        self._last_non_add_version = self._version
        return True

    def edges(self) -> "list[Edge]":
        """All edges as :class:`Edge` records."""
        return [Edge(src=k[0], dst=k[1], weight=v[0], tag=v[1])
                for k, v in self._edges.items()]

    def edge_triples(self) -> "list[tuple[str, str, int]]":
        """All edges as bare ``(src, dst, weight)`` triples.

        The longest-path solver iterates the edge set once per
        relaxation pass on every scheduler move; this accessor avoids
        allocating :class:`Edge` records and is cached until the edge
        set next changes.
        """
        cache = self._triples_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        triples = [(k[0], k[1], v[0]) for k, v in self._edges.items()]
        self._triples_cache = (self._version, triples)
        return triples

    def out_edges(self, name: str) -> "list[Edge]":
        """Edges leaving ``name`` (constraints that delaying it tightens)."""
        return [Edge(src=name, dst=d, weight=self._edges[(name, d)][0],
                     tag=self._edges[(name, d)][1])
                for d in self._out.get(name, ())
                if (name, d) in self._edges]

    def in_edges(self, name: str) -> "list[Edge]":
        """Edges entering ``name``."""
        return [Edge(src=s, dst=name, weight=self._edges[(s, name)][0],
                     tag=self._edges[(s, name)][1])
                for s in self._in.get(name, ())
                if (s, name) in self._edges]

    def successors(self, name: str) -> "list[str]":
        """Targets of *forward* (weight >= 0) edges out of ``name``.

        Forward edges define the topological order the timing scheduler
        traverses; backward (negative) edges are max separations and do
        not create ordering obligations.
        """
        return sorted(d for d in self._out.get(name, ())
                      if (name, d) in self._edges
                      and self._edges[(name, d)][0] >= 0)

    def edge_count(self) -> int:
        """Number of stored (tightest) edges."""
        return len(self._edges)

    # ------------------------------------------------------------------
    # convenience constraint builders (paper Section 4.1 vocabulary)
    # ------------------------------------------------------------------

    def add_min_separation(self, src: str, dst: str, sep: int,
                           tag: str = "user") -> bool:
        """``dst`` starts at least ``sep`` after ``src`` starts."""
        if sep < 0:
            raise GraphError(f"min separation must be >= 0, got {sep}")
        return self.add_edge(src, dst, sep, tag=tag)

    def add_max_separation(self, src: str, dst: str, sep: int,
                           tag: str = "user") -> bool:
        """``dst`` starts at most ``sep`` after ``src`` starts."""
        if sep < 0:
            raise GraphError(f"max separation must be >= 0, got {sep}")
        return self.add_edge(dst, src, -sep, tag=tag)

    def add_separation_window(self, src: str, dst: str,
                              min_sep: int, max_sep: int,
                              tag: str = "user") -> None:
        """``sigma(dst) - sigma(src)`` constrained to ``[min_sep, max_sep]``.

        This is the paper's native constraint form, e.g. "heating at
        least 5 s, at most 50 s before steering".
        """
        if min_sep > max_sep:
            raise GraphError(
                f"empty window [{min_sep}, {max_sep}] for {src!r}->{dst!r}")
        self.add_min_separation(src, dst, min_sep, tag=tag)
        self.add_max_separation(src, dst, max_sep, tag=tag)

    def add_precedence(self, src: str, dst: str, gap: int = 0,
                       tag: str = "user") -> bool:
        """End-to-start precedence: ``dst`` starts >= ``gap`` after ``src``
        *finishes* (i.e. start-to-start ``d(src) + gap``)."""
        return self.add_min_separation(
            src, dst, self.task(src).duration + gap, tag=tag)

    def add_release(self, name: str, time: int, tag: str = "user") -> bool:
        """``name`` may not start before absolute time ``time``."""
        return self.add_min_separation(ANCHOR_NAME, name, time, tag=tag)

    def add_start_deadline(self, name: str, time: int,
                           tag: str = "user") -> bool:
        """``name`` must start no later than absolute time ``time``."""
        return self.add_max_separation(ANCHOR_NAME, name, time, tag=tag)

    def add_finish_deadline(self, name: str, time: int,
                            tag: str = "user") -> bool:
        """``name`` must finish no later than absolute time ``time``."""
        deadline = time - self.task(name).duration
        if deadline < 0:
            raise GraphError(
                f"finish deadline {time} is shorter than duration of "
                f"{name!r}")
        return self.add_start_deadline(name, deadline, tag=tag)

    def lock_start(self, name: str, time: int, tag: str = "lock") -> None:
        """Pin ``sigma(name)`` to exactly ``time`` (min + max edges).

        The max-power scheduler locks the start times of zero-slack tasks
        before recursing (Section 5.2); rollback removes the locks.

        The default ``"lock"`` tag marks a *scheduler-owned* pin: the
        max-power stage may lift it during spike repair and left-shift
        it during compaction.  Callers freezing executed history
        (:mod:`repro.execution.replan`, :mod:`repro.online`) must pass
        a different tag — conventionally ``"frozen"`` — so neither
        pass can move a task that has already run.
        """
        self.add_min_separation(ANCHOR_NAME, name, time, tag=tag)
        self.add_max_separation(ANCHOR_NAME, name, time, tag=tag)

    def serialize_after(self, first: str, second: str,
                        gap: int = 0, tag: str = "serialize") -> bool:
        """Force ``second`` to start after ``first`` completes.

        Used by the timing scheduler to resolve resource conflicts.
        """
        return self.add_precedence(first, second, gap=gap, tag=tag)

    # ------------------------------------------------------------------
    # checkpoint / rollback
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Return a token capturing the current edge set."""
        return len(self._journal)

    def rollback(self, token: int) -> None:
        """Undo every edge mutation made after ``checkpoint()``."""
        if token < 0 or token > len(self._journal):
            raise GraphError(f"invalid rollback token {token}")
        while len(self._journal) > token:
            key, prev = self._journal.pop()
            if prev is None:
                if key in self._edges:
                    del self._edges[key]
                self._out[key[0]].discard(key[1])
                self._in[key[1]].discard(key[0])
            else:
                self._edges[key] = prev
                self._out[key[0]].add(key[1])
                self._in[key[1]].add(key[0])
            self._version += 1
            self._last_non_add_version = self._version
        if self._state_cache:
            # The edge set is a pure function of the journal prefix, so
            # memoized fixpoints at or below the restored token are still
            # exact; anything above describes an edge set that no longer
            # exists and must go.
            for key in [k for k in self._state_cache if k > token]:
                del self._state_cache[key]

    # ------------------------------------------------------------------
    # copying / composition
    # ------------------------------------------------------------------

    def copy(self, name: "str | None" = None) -> "ConstraintGraph":
        """Deep-enough copy: fresh edge store and journal, shared tasks
        (tasks are frozen dataclasses so sharing is safe)."""
        clone = ConstraintGraph(name=name or self.name)
        for task in self.tasks():
            clone.add_task(task)
        for res in self._resources:
            if res.name not in clone._resources:
                clone._resources.add(res)
            else:
                # replace the auto-created default with the real record
                clone._resources._by_name[res.name] = res
        for (src, dst), (weight, tag) in self._edges.items():
            clone.add_edge(src, dst, weight, tag=tag)
        clone._journal.clear()
        from . import kernel as _kernel
        if _kernel.warm_enabled():
            # Warm-origin tag: the clone remembers which graph (and
            # version) it reproduces, so as long as it stays unmutated
            # its first longest-path solve can come from the warm pool
            # — the cross-sweep-point re-solve seeding of the ISSUE.
            clone._warm_src = (self._uid, self._version)
            clone._warm_at_version = clone._version
            cache = self._lp_cache
            if cache is not None and cache[0] == self._version \
                    and len(cache[1]) == len(self._tasks):
                # Identical edge set => identical unique fixpoint, so
                # the solved distances carry over directly.  The dicts
                # are shared, never mutated in place (the incremental
                # path copies first).
                clone._lp_cache = (clone._version, cache[1], cache[2])
        return clone

    def merge(self, other: "ConstraintGraph", prefix: str = "") -> None:
        """Import all tasks and edges of ``other`` (names optionally
        prefixed), e.g. to concatenate unrolled iterations."""
        mapping = {ANCHOR_NAME: ANCHOR_NAME}
        for task in other.tasks():
            new_name = prefix + task.name
            mapping[task.name] = new_name
            self.add_task(task.renamed(new_name))
        for edge in other.edges():
            self.add_edge(mapping[edge.src], mapping[edge.dst],
                          edge.weight, tag=edge.tag)

    def strip_tags(self, tags: Iterable[str]) -> int:
        """Remove every edge whose tag is in ``tags``; returns count.

        Useful to re-solve a problem from its user constraints after a
        scheduler has decorated the graph with derived edges.  Not
        journaled (it rewrites history), so only call between scheduling
        runs, never inside one.
        """
        doomed = [k for k, v in self._edges.items() if v[1] in set(tags)]
        for key in doomed:
            del self._edges[key]
            self._out[key[0]].discard(key[1])
            self._in[key[1]].discard(key[0])
        self._journal.clear()
        self._version += 1
        self._last_non_add_version = self._version
        self._state_cache.clear()
        return len(doomed)

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __getstate__(self):
        """Lean pickles: caches are rebuildable, memos are per-process.

        The arrays cache holds numpy arrays and the state cache can hold
        hundreds of solved fixpoints — both are derived data the
        receiving process can recreate.  The warm-origin tag is dropped
        because the warm pool is per-process memory: a probe in another
        process could never hit.  The plain ``_lp_cache`` dicts *are*
        shipped — they give the receiving worker a warm first solve.
        """
        state = self.__dict__.copy()
        state["_arrays_cache"] = None
        state["_state_cache"] = {}
        state["_warm_src"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Fresh identity in the receiving process: two unpickled copies
        # of the same parent could otherwise mutate apart while sharing
        # a uid, poisoning the warm pool with colliding keys.
        self._uid = (os.getpid(), next(_uid_counter))

    def __repr__(self) -> str:
        return (f"ConstraintGraph({self.name!r}, tasks={len(self)}, "
                f"edges={self.edge_count()})")
