"""Struct-of-arrays views of the constraint graph and power profile.

The pure-Python solver core walks dict-of-tuples object graphs; at
paper scale (tens of tasks) that is instantaneous, but the synthetic
benchmarks and dense sweep grids spend most of their time re-walking
the same structures.  This module flattens both hot structures into
parallel arrays once per version and caches the result:

* :class:`GraphArrays` — vertex names interned to dense integer ids
  plus parallel ``src``/``dst``/``weight`` edge arrays, pre-grouped by
  destination so a whole Bellman–Ford relaxation pass is one
  ``np.maximum.reduceat`` instead of an edge-at-a-time Python loop.
* :class:`ProfileArrays` — the profile's ``(t0, t1, power)`` segments
  as three arrays, so energy integrals and level scans vectorize.

Numpy is optional: when it is missing, :data:`HAVE_NUMPY` is False and
the kernel layer (:mod:`repro.core.kernel`) keeps everything on the
pure-Python reference oracle.  Nothing here imports the graph or
profile modules — builders take the objects duck-typed, which keeps
the core import graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

try:  # soft dependency: the container image ships numpy, but the
    # package must keep importing (and solving, on the oracle path)
    # without it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

#: True when numpy imported; gates every vectorized fast path.
HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "GraphArrays", "ProfileArrays",
           "graph_arrays", "profile_arrays"]


@dataclass(frozen=True)
class GraphArrays:
    """Interned, destination-grouped edge arrays of one graph version.

    ``names[i]`` is the vertex with dense id ``i`` (insertion order,
    anchor included); ``index`` is the inverse mapping.  The edge
    arrays are sorted by destination id: ``group_starts[k]`` is the
    offset of destination ``group_dst[k]``'s run inside
    ``src``/``weight``, so one relaxation pass is

        ``np.maximum.reduceat(dist[src] + weight, group_starts)``

    scattered back onto ``group_dst``.
    """

    names: "tuple[str, ...]"
    index: "dict[str, int]"
    src: Any        # int64[E], sorted by destination id
    dst: Any        # int64[E], sorted (the grouping key)
    weight: Any     # int64[E], aligned with src
    group_starts: Any  # int64[G] run offsets into src/weight
    group_dst: Any     # int64[G] unique destination ids

    @property
    def edge_count(self) -> int:
        return int(self.src.shape[0])


def graph_arrays(graph) -> GraphArrays:
    """The :class:`GraphArrays` of ``graph``'s current edge set.

    Cached on the graph keyed by its mutation version, so repeated
    solves of an unchanged graph rebuild nothing.  Requires numpy.
    """
    if not HAVE_NUMPY:  # pragma: no cover - guarded by callers
        raise RuntimeError("graph_arrays requires numpy")
    cache = getattr(graph, "_arrays_cache", None)
    if cache is not None and cache[0] == graph._version:
        return cache[1]
    names = tuple(graph.task_names(include_anchor=True))
    index = {name: i for i, name in enumerate(names)}
    triples = graph.edge_triples()
    if triples:
        src = _np.fromiter((index[t[0]] for t in triples),
                           dtype=_np.int64, count=len(triples))
        dst = _np.fromiter((index[t[1]] for t in triples),
                           dtype=_np.int64, count=len(triples))
        weight = _np.fromiter((t[2] for t in triples),
                              dtype=_np.int64, count=len(triples))
        order = _np.argsort(dst, kind="stable")
        src, dst, weight = src[order], dst[order], weight[order]
        group_dst, group_starts = _np.unique(dst, return_index=True)
    else:
        src = dst = weight = _np.empty(0, dtype=_np.int64)
        group_dst = group_starts = _np.empty(0, dtype=_np.int64)
    arrays = GraphArrays(names=names, index=index, src=src, dst=dst,
                         weight=weight, group_starts=group_starts,
                         group_dst=group_dst)
    graph._arrays_cache = (graph._version, arrays)
    return arrays


@dataclass(frozen=True)
class ProfileArrays:
    """A profile's segments as three parallel arrays."""

    t0: Any      # int64[S]
    t1: Any      # int64[S]
    power: Any   # float64[S]

    @property
    def segment_count(self) -> int:
        return int(self.power.shape[0])


def profile_arrays(profile) -> ProfileArrays:
    """The :class:`ProfileArrays` of a :class:`PowerProfile`.

    Profiles are immutable after construction, so the arrays are built
    once and cached on the instance.  Requires numpy.
    """
    if not HAVE_NUMPY:  # pragma: no cover - guarded by callers
        raise RuntimeError("profile_arrays requires numpy")
    cache = getattr(profile, "_arrays_cache", None)
    if cache is not None:
        return cache
    segments = profile._segments
    count = len(segments)
    arrays = ProfileArrays(
        t0=_np.fromiter((s[0] for s in segments), dtype=_np.int64,
                        count=count),
        t1=_np.fromiter((s[1] for s in segments), dtype=_np.int64,
                        count=count),
        power=_np.fromiter((s[2] for s in segments), dtype=_np.float64,
                           count=count))
    profile._arrays_cache = arrays
    return arrays
