"""Slack analysis (paper Section 4.1 / technical report [5]).

Given a time-valid schedule ``sigma``, the slack ``Delta_sigma(v)`` of a
task is the largest delay that can be applied to ``v`` *alone* (all
other start times held fixed) such that the schedule stays time-valid.

Delaying ``v`` by ``delta`` only tightens the constraints on ``v``'s
*outgoing* edges: an edge ``(v, w, c)`` asserts
``sigma(w) - sigma(v) >= c``, so we need
``delta <= sigma(w) - sigma(v) - c``.  Constraints entering ``v``
(``sigma(v) >= sigma(u) + c``) can only become slacker.  Hence

    ``Delta_sigma(v) = min over outgoing (v, w, c) of
    (sigma(w) - sigma(v) - c)``

exactly as the paper states ("computed from sigma and vertex v's
outgoing edges").  Max separations *on* ``v`` appear as outgoing
negative edges and are therefore naturally included; resource
serialization edges added by the timing scheduler keep same-resource
tasks from colliding when one slides within its slack.

The slack-based heuristics of the max-power scheduler order simultaneous
tasks by this quantity.
"""

from __future__ import annotations

from ..errors import ValidationError
from .schedule import Schedule

__all__ = ["slack", "slack_table", "UNBOUNDED_SLACK", "movable_window"]

#: Effectively-infinite slack for tasks with no outgoing constraints.
#: Kept finite so arithmetic (min, comparisons, delay caps) stays exact.
UNBOUNDED_SLACK = 10 ** 9


def slack(schedule: Schedule, name: str) -> int:
    """``Delta_sigma(v)``: the single-task delay budget of ``name``.

    Raises :class:`ValidationError` if the schedule already violates one
    of the task's outgoing constraints (slack would be negative, which
    only happens for time-invalid schedules).
    """
    graph = schedule.graph
    best = UNBOUNDED_SLACK
    sigma_v = schedule.start(name)
    # Hot path: the max-power scheduler recomputes every candidate's
    # slack after each move.  Read the edge store directly instead of
    # materializing Edge records per call.
    edges = graph._edges
    anchor = graph.anchor.name
    for dst in graph._out.get(name, ()):
        entry = edges.get((name, dst))
        if entry is None:
            continue
        weight = entry[0]
        if dst == anchor:
            # outgoing edge to the anchor encodes a start deadline:
            # sigma(anchor) - sigma(v) >= weight  =>  sigma(v) <= -weight
            room = 0 - sigma_v - weight
        elif dst in schedule:
            room = schedule.start(dst) - sigma_v - weight
        else:
            continue
        if room < 0:
            raise ValidationError(
                f"schedule is not time-valid at edge "
                f"{name!r} -> {dst!r} (weight {weight}); "
                f"slack would be {room}")
        best = min(best, room)
    return best


def slack_table(schedule: Schedule) -> "dict[str, int]":
    """Slack of every task under the schedule."""
    return {name: slack(schedule, name) for name in schedule}


def movable_window(schedule: Schedule, name: str) -> "tuple[int, int]":
    """The closed interval of start times task ``name`` may take with
    every other task fixed.

    The upper end is ``sigma(v) + Delta_sigma(v)``.  The lower end comes
    from the incoming edges (``sigma(v) >= sigma(u) + c``), floored at 0.
    Useful for interactive what-if exploration (the Gantt-chart
    "drag a bin" model of Section 4.3) and for the exhaustive scheduler.
    """
    graph = schedule.graph
    lo = 0
    for edge in graph.in_edges(name):
        if edge.src == graph.anchor.name:
            lo = max(lo, edge.weight)
        elif edge.src in schedule:
            lo = max(lo, schedule.start(edge.src) + edge.weight)
    hi = schedule.start(name) + slack(schedule, name)
    if lo > hi:
        raise ValidationError(
            f"task {name!r} has an empty feasible window [{lo}, {hi}] — "
            "the schedule is not time-valid")
    return lo, hi
