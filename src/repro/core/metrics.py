"""Power-aware schedule metrics (paper Section 4.2).

The two headline quantities distinguish *free* power (solar, lost if
unused) from *costly* power (non-rechargeable battery):

* **Energy cost** ``Ec_sigma(P_min)``: energy drawn above the free level
  — what the battery must supply.

      ``Ec = integral over [0, tau] of max(0, P(t) - P_min) dt``

* **Min-power utilization** ``rho_sigma(P_min)``: fraction of the free
  energy actually absorbed.

      ``rho = integral min(P(t), P_min) dt / (P_min * tau)``

Conventional energy minimization is the special case ``P_min = 0``
(then ``Ec`` is the total energy and ``rho`` is defined as 1).

We also provide power-jitter statistics, since the paper motivates the
min-power constraint partly as a jitter-control mechanism for battery
health.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .profile import PowerProfile
from .schedule import Schedule

__all__ = ["ScheduleMetrics", "energy_cost", "min_power_utilization",
           "power_jitter", "evaluate"]


def energy_cost(profile: PowerProfile, p_min: float) -> float:
    """``Ec_sigma(P_min)`` in joules: battery energy drawn above the
    free-power level."""
    return profile.energy_above(p_min)


def min_power_utilization(profile: PowerProfile, p_min: float) -> float:
    """``rho_sigma(P_min)`` in [0, 1]: free energy used / free energy
    available.  Defined as 1.0 when ``P_min == 0`` or the horizon is
    empty (there is no free energy to waste)."""
    if p_min <= 0 or profile.horizon == 0:
        return 1.0
    available = p_min * profile.horizon
    return profile.energy_capped(p_min) / available


def power_jitter(profile: PowerProfile) -> "tuple[float, float]":
    """(standard deviation, peak-to-average ratio) of ``P(t)``.

    Battery-friendliness indicators: the min-power constraint flattens
    the curve, reducing both.
    """
    horizon = profile.horizon
    if horizon == 0:
        return 0.0, 1.0
    mean = profile.energy() / horizon
    var = sum((t1 - t0) * (p - mean) ** 2
              for t0, t1, p in profile.segments) / horizon
    ratio = profile.peak() / mean if mean > 0 else math.inf
    return math.sqrt(var), ratio


@dataclass(frozen=True)
class ScheduleMetrics:
    """Everything Table 3 reports about one schedule, plus extras."""

    finish_time: int
    total_energy: float
    energy_cost: float
    utilization: float
    free_energy_used: float
    free_energy_available: float
    peak_power: float
    jitter_std: float
    peak_to_average: float
    spikes: int
    gaps: int

    def row(self) -> "dict[str, float]":
        """A flat dict suitable for report tables."""
        return {
            "tau_s": self.finish_time,
            "energy_J": round(self.total_energy, 3),
            "energy_cost_J": round(self.energy_cost, 3),
            "utilization_pct": round(100.0 * self.utilization, 1),
            "peak_W": round(self.peak_power, 3),
            "jitter_std_W": round(self.jitter_std, 3),
        }


def evaluate(schedule: Schedule, p_max: float, p_min: float,
             baseline: float = 0.0) -> ScheduleMetrics:
    """Compute the full metric set of a schedule under (P_max, P_min)."""
    profile = PowerProfile.from_schedule(schedule, baseline=baseline)
    std, ratio = power_jitter(profile)
    return ScheduleMetrics(
        finish_time=schedule.makespan,
        total_energy=profile.energy(),
        energy_cost=energy_cost(profile, p_min),
        utilization=min_power_utilization(profile, p_min),
        free_energy_used=profile.energy_capped(p_min),
        free_energy_available=p_min * profile.horizon,
        peak_power=profile.peak(),
        jitter_std=std,
        peak_to_average=ratio,
        spikes=len(profile.spikes(p_max)),
        gaps=len(profile.gaps(p_min)),
    )
