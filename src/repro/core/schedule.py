"""Schedules: start-time assignments and derived queries.

A schedule ``sigma`` assigns an integer start time ``sigma(v)`` to every
task of a constraint graph (paper Section 4.1).  The class is a thin,
immutable-by-convention wrapper around the ``{task name: start}`` map
with the derived quantities the algorithms need:

* finish time ``tau_sigma`` (when all tasks complete),
* the set of tasks *active* at a time t,
* per-resource timelines (the rows of the time view of the power-aware
  Gantt chart),
* functional updates (``with_start``/``delayed``) used by the power
  schedulers to explore neighbouring schedules.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import ValidationError
from .graph import ConstraintGraph
from .task import Task

__all__ = ["Schedule"]


class Schedule:
    """An assignment of start times to the tasks of a graph."""

    def __init__(self, graph: ConstraintGraph,
                 starts: "Mapping[str, int]"):
        missing = [name for name in graph.task_names()
                   if name not in starts]
        if missing:
            raise ValidationError(
                f"schedule is missing start times for {missing}")
        for name, start in starts.items():
            if name not in graph and not name.startswith("__"):
                raise ValidationError(
                    f"schedule mentions unknown task {name!r}")
            if not isinstance(start, int) or start < 0:
                raise ValidationError(
                    f"start of {name!r} must be a non-negative integer, "
                    f"got {start!r}")
        self._graph = graph
        self._starts = {name: int(starts[name])
                        for name in graph.task_names()}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> ConstraintGraph:
        """The constraint graph this schedule belongs to."""
        return self._graph

    def start(self, name: str) -> int:
        """``sigma(v)`` — the assigned start time."""
        return self._starts[name]

    def finish(self, name: str) -> int:
        """``sigma(v) + d(v)`` — the completion time of the task."""
        return self._starts[name] + self._graph.task(name).duration

    def __contains__(self, name: str) -> bool:
        return name in self._starts

    def __iter__(self) -> "Iterator[str]":
        return iter(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def items(self) -> "Iterator[tuple[str, int]]":
        """Iterate over ``(task name, start time)`` pairs."""
        return iter(self._starts.items())

    def as_dict(self) -> "dict[str, int]":
        """A fresh ``{task: start}`` dictionary."""
        return dict(self._starts)

    @property
    def makespan(self) -> int:
        """Finish time ``tau_sigma``: when the last task completes."""
        if not self._starts:
            return 0
        return max(self.finish(name) for name in self._starts)

    # Alias matching the paper's tau_sigma vocabulary.
    finish_time = makespan

    # ------------------------------------------------------------------
    # activity queries
    # ------------------------------------------------------------------

    def is_active(self, name: str, t: int) -> bool:
        """True if the task is executing during time slot ``[t, t+1)``.

        Zero-duration tasks are never active (they are milestones and
        draw no power).
        """
        task = self._graph.task(name)
        if task.duration == 0:
            return False
        start = self._starts[name]
        return start <= t < start + task.duration

    def active_tasks(self, t: int) -> "list[Task]":
        """All tasks executing during slot ``[t, t+1)``, insertion order."""
        return [self._graph.task(name) for name in self._starts
                if self.is_active(name, t)]

    def power_at(self, t: int) -> float:
        """Instantaneous task power at slot ``t`` (baseline excluded)."""
        return sum(task.power for task in self.active_tasks(t))

    def resource_timeline(self, resource: str) -> "list[tuple[int, Task]]":
        """``(start, task)`` pairs on a resource, sorted by start time."""
        pairs = [(self._starts[t.name], t)
                 for t in self._graph.tasks_on(resource)]
        pairs.sort(key=lambda p: (p[0], p[1].name))
        return pairs

    def overlapping_on_resource(self, resource: str) \
            -> "list[tuple[Task, Task]]":
        """Pairs of tasks that illegally overlap on a shared resource."""
        timeline = self.resource_timeline(resource)
        clashes = []
        for i, (start_u, u) in enumerate(timeline):
            end_u = start_u + u.duration
            for start_v, v in timeline[i + 1:]:
                if start_v >= end_u:
                    break
                if u.duration > 0 and v.duration > 0:
                    clashes.append((u, v))
        return clashes

    # ------------------------------------------------------------------
    # functional updates
    # ------------------------------------------------------------------

    def with_start(self, name: str, start: int) -> "Schedule":
        """A copy with one task moved to an absolute start time."""
        if name not in self._starts:
            raise ValidationError(f"unknown task {name!r}")
        starts = dict(self._starts)
        starts[name] = start
        return Schedule(self._graph, starts)

    def delayed(self, name: str, delta: int) -> "Schedule":
        """A copy with one task delayed by ``delta >= 0`` time units."""
        if delta < 0:
            raise ValidationError(
                f"delay must be non-negative, got {delta}")
        return self.with_start(name, self._starts[name] + delta)

    def shifted(self, delta: int) -> "Schedule":
        """A copy with *every* task shifted right by ``delta`` units.

        Used when concatenating per-iteration schedules in the mission
        simulator.
        """
        if delta < 0:
            raise ValidationError(f"shift must be non-negative, got {delta}")
        return Schedule(self._graph,
                        {name: s + delta for name, s in self._starts.items()})

    # ------------------------------------------------------------------
    # comparisons / display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._starts == other._starts

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._starts.items())))

    def differences(self, other: "Schedule") \
            -> "list[tuple[str, int, int]]":
        """Tasks whose start differs: ``(name, self_start, other_start)``."""
        diffs = []
        for name, start in self._starts.items():
            if name in other and other.start(name) != start:
                diffs.append((name, start, other.start(name)))
        return diffs

    def __repr__(self) -> str:
        body = ", ".join(f"{n}@{s}" for n, s in sorted(self._starts.items()))
        return f"Schedule(tau={self.makespan}, {body})"

    @staticmethod
    def from_pairs(graph: ConstraintGraph,
                   pairs: "Iterable[tuple[str, int]]") -> "Schedule":
        """Build from an iterable of ``(name, start)`` pairs."""
        return Schedule(graph, dict(pairs))
