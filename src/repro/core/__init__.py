"""Core data model: tasks, constraint graphs, schedules, power profiles.

This package implements Section 4 of the paper — the problem
formulation.  The scheduling algorithms live in
:mod:`repro.scheduling`; everything here is algorithm-agnostic.
"""

from .arrays import HAVE_NUMPY, GraphArrays, ProfileArrays
from .diagnose import (CycleExplanation, explain_infeasibility,
                       find_cycle)
from .dvfs import (DEFAULT_LADDER, attach_ladder, ladder_from_freqs,
                   materialize_assignment, quantize_power, scaled_duration,
                   scaled_power)
from .graph import (ADD_LOG_FACTOR, ConstraintGraph, Edge,
                    add_log_factor, set_add_log_factor)
from .kernel import (KERNEL_MODES, clear_warm_pool, kernel_mode,
                     set_kernel, set_warm, warm_enabled)
from .longest_path import (LongestPathResult, earliest_starts,
                           latest_starts, longest_paths)
from .phased import (add_phased_task, is_phase_of, phase_names,
                     phased_start)
from .metrics import (ScheduleMetrics, energy_cost, evaluate,
                      min_power_utilization, power_jitter)
from .problem import SchedulingProblem
from .profile import Interval, PowerProfile
from .resource import Resource, ResourcePool
from .schedule import Schedule
from .slack import UNBOUNDED_SLACK, movable_window, slack, slack_table
from .task import ANCHOR_NAME, OperatingPoint, Task
from .validation import (ValidationReport, Violation, assert_power_valid,
                         assert_time_valid, check_power_valid,
                         check_time_valid)

__all__ = [
    "ADD_LOG_FACTOR",
    "ANCHOR_NAME",
    "ConstraintGraph",
    "CycleExplanation",
    "DEFAULT_LADDER",
    "Edge",
    "GraphArrays",
    "HAVE_NUMPY",
    "Interval",
    "KERNEL_MODES",
    "LongestPathResult",
    "OperatingPoint",
    "PowerProfile",
    "ProfileArrays",
    "Resource",
    "ResourcePool",
    "Schedule",
    "ScheduleMetrics",
    "SchedulingProblem",
    "Task",
    "UNBOUNDED_SLACK",
    "ValidationReport",
    "Violation",
    "add_log_factor",
    "add_phased_task",
    "attach_ladder",
    "assert_power_valid",
    "assert_time_valid",
    "check_power_valid",
    "check_time_valid",
    "clear_warm_pool",
    "earliest_starts",
    "energy_cost",
    "evaluate",
    "explain_infeasibility",
    "find_cycle",
    "is_phase_of",
    "kernel_mode",
    "ladder_from_freqs",
    "latest_starts",
    "longest_paths",
    "materialize_assignment",
    "min_power_utilization",
    "movable_window",
    "phase_names",
    "phased_start",
    "power_jitter",
    "quantize_power",
    "scaled_duration",
    "scaled_power",
    "set_add_log_factor",
    "set_kernel",
    "set_warm",
    "slack",
    "slack_table",
    "warm_enabled",
]
