"""Power profiles: the piecewise-constant function ``P_sigma(t)``.

Section 4.2 of the paper defines the *power profile* of a schedule as
the instantaneous total power drawn during execution.  On the integer
time grid the profile is piecewise constant with breakpoints only at
task starts and finishes, so we represent it as a sorted list of
half-open segments ``(t0, t1, power)`` covering ``[0, horizon)``.

The profile answers every power question the schedulers and metrics
need:

* **power spikes** — maximal intervals where ``P(t) > P_max`` (hard
  violations the max-power scheduler must remove),
* **power gaps** — maximal intervals where ``P(t) < P_min`` (soft
  violations the min-power scheduler tries to fill),
* energy integrals split at an arbitrary level (free vs costly energy).

A constant ``baseline`` models always-on consumers (the rover's CPU in
Table 2, resource idle power) without making them schedulable tasks.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

from ..errors import ValidationError
from . import kernel as _kernel
from .schedule import Schedule

__all__ = ["Interval", "PowerProfile"]


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)`` with an annotation.

    ``extremum`` records the worst profile value inside the interval:
    the peak power for a spike, the lowest power for a gap.
    """

    start: int
    end: int
    extremum: float

    @property
    def length(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return f"[{self.start}, {self.end}) @ {self.extremum:g}W"


class PowerProfile:
    """Piecewise-constant instantaneous power of a schedule."""

    def __init__(self, segments: "Iterable[tuple[int, int, float]]",
                 baseline: float = 0.0):
        """Build directly from ``(t0, t1, power)`` segments.

        Most callers use :meth:`from_schedule` instead.  Segments must
        be non-overlapping, sorted, and contiguous from 0; ``baseline``
        is *already included* in the stored powers (it is remembered
        only for reporting).
        """
        self._segments: "list[tuple[int, int, float]]" = []
        prev_end = 0
        for t0, t1, power in segments:
            if t0 != prev_end:
                raise ValidationError(
                    f"profile segments must be contiguous from 0; gap or "
                    f"overlap at t={t0} (expected {prev_end})")
            if t1 <= t0:
                raise ValidationError(
                    f"empty or negative segment [{t0}, {t1})")
            if power < 0:
                raise ValidationError(
                    f"negative power {power} in segment [{t0}, {t1})")
            # Merge equal-power neighbours for compactness.  "Equal"
            # uses the same POWER_TOL as every validity check: summing
            # task powers in a different order (permuted inputs, the
            # vectorized kernel) can jitter a level by an ulp, and an
            # exact == here would then split one plateau into two
            # segments — changing segment counts across backends while
            # every power query still agreed.  The merged segment keeps
            # the first-seen power, so a long plateau cannot drift.
            if self._segments and \
                    abs(self._segments[-1][2] - power) <= self.POWER_TOL:
                last = self._segments.pop()
                self._segments.append((last[0], t1, last[2]))
            else:
                self._segments.append((t0, t1, power))
            prev_end = t1
        self.baseline = baseline
        self._starts = [seg[0] for seg in self._segments]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_schedule(schedule: Schedule, baseline: float = 0.0,
                      horizon: "int | None" = None) -> "PowerProfile":
        """The profile of a schedule plus a constant baseline.

        ``horizon`` extends (or exactly covers) the profile domain; by
        default it is the schedule's finish time ``tau_sigma``.  Resource
        idle power declared on the graph is added to the baseline.
        """
        baseline = baseline + schedule.graph.resources.total_idle_power
        tau = schedule.makespan
        horizon = tau if horizon is None else horizon
        if horizon < tau:
            raise ValidationError(
                f"horizon {horizon} is before the schedule finish {tau}")
        if horizon == 0:
            return PowerProfile([], baseline=baseline)

        # Sweep: breakpoints at every task start/finish.
        points = {0, horizon}
        events: "list[tuple[int, float]]" = []
        for name, start in schedule.items():
            task = schedule.graph.task(name)
            if task.duration == 0 or task.power == 0:
                continue
            end = start + task.duration
            points.add(start)
            points.add(min(end, horizon))
            events.append((start, task.power))
            events.append((end, -task.power))
        breaks = sorted(p for p in points if 0 <= p <= horizon)
        deltas: "dict[int, float]" = {}
        for t, dp in events:
            deltas[t] = deltas.get(t, 0.0) + dp

        segments: "list[tuple[int, int, float]]" = []
        level = baseline
        pending = sorted(deltas)
        idx = 0
        for b0, b1 in zip(breaks, breaks[1:]):
            while idx < len(pending) and pending[idx] <= b0:
                level += deltas[pending[idx]]
                idx += 1
            segments.append((b0, b1, max(level, 0.0)))
        return PowerProfile(segments, baseline=baseline)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    @property
    def segments(self) -> "list[tuple[int, int, float]]":
        """The merged ``(t0, t1, power)`` segments, sorted."""
        return list(self._segments)

    @property
    def horizon(self) -> int:
        """End of the profile domain."""
        return self._segments[-1][1] if self._segments else 0

    def value(self, t: int) -> float:
        """``P(t)`` for ``0 <= t < horizon`` (0 outside)."""
        if not self._segments or t < 0 or t >= self.horizon:
            return 0.0
        idx = bisect_right(self._starts, t) - 1
        return self._segments[idx][2]

    def peak(self) -> float:
        """The maximum instantaneous power."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_peak(self)
        return max((seg[2] for seg in self._segments), default=0.0)

    def floor(self) -> float:
        """The minimum instantaneous power over the domain."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_floor(self)
        return min((seg[2] for seg in self._segments), default=0.0)

    # ------------------------------------------------------------------
    # spikes and gaps (Section 4.2)
    # ------------------------------------------------------------------

    #: Absolute tolerance for power comparisons.  Summing float task
    #: powers can overshoot a budget by an ulp; a schedule is only
    #: treated as violating a constraint when it misses by more than
    #: this (the paper's instances are specified to 0.1 W).
    POWER_TOL = 1e-9

    def spikes(self, p_max: float, tol: float = POWER_TOL) \
            -> "list[Interval]":
        """Maximal intervals where ``P(t) > P_max`` (hard violations)."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return [Interval(t0, t1, ext) for t0, t1, ext
                    in _kernel.np_spike_runs(self, p_max, tol)]
        return self._level_intervals(lambda p: p > p_max + tol, max)

    def gaps(self, p_min: float, tol: float = POWER_TOL) \
            -> "list[Interval]":
        """Maximal intervals where ``P(t) < P_min`` (soft violations)."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return [Interval(t0, t1, ext) for t0, t1, ext
                    in _kernel.np_gap_runs(self, p_min, tol)]
        return self._level_intervals(lambda p: p < p_min - tol, min)

    def first_spike(self, p_max: float, tol: float = POWER_TOL) \
            -> "Interval | None":
        """The earliest spike, or None if the profile is power-valid."""
        for t0, t1, power in self._segments:
            if power > p_max + tol:
                return self._extend_interval(
                    t0, lambda p: p > p_max + tol, max)
        return None

    def first_gap(self, p_min: float, tol: float = POWER_TOL) \
            -> "Interval | None":
        """The earliest gap, or None if there are no gaps."""
        for t0, t1, power in self._segments:
            if power < p_min - tol:
                return self._extend_interval(
                    t0, lambda p: p < p_min - tol, min)
        return None

    def is_power_valid(self, p_max: float, tol: float = POWER_TOL) -> bool:
        """True when the profile never exceeds the max power constraint."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_is_power_valid(self, p_max, tol)
        return all(seg[2] <= p_max + tol for seg in self._segments)

    def _level_intervals(self, predicate, extremum_fn) -> "list[Interval]":
        out: "list[Interval]" = []
        cur_start = None
        cur_ext: "float | None" = None
        for t0, t1, power in self._segments:
            if predicate(power):
                if cur_start is None:
                    cur_start, cur_ext = t0, power
                else:
                    cur_ext = extremum_fn(cur_ext, power)
                cur_end = t1
            elif cur_start is not None:
                out.append(Interval(cur_start, cur_end, cur_ext))
                cur_start, cur_ext = None, None
        if cur_start is not None:
            out.append(Interval(cur_start, cur_end, cur_ext))
        return out

    def _extend_interval(self, start: int, predicate, extremum_fn) \
            -> Interval:
        # Jump straight to the segment containing ``start`` instead of
        # scanning from t=0 — first_spike/first_gap call this inside the
        # scheduler inner loop, and late violations made it O(S) per
        # call.  ``bisect_right - 1`` lands on the covering segment (or
        # -1 before the domain, clamped); the ``t1 <= start`` guard is
        # kept for the boundary where ``start`` equals that segment's
        # end.
        ext = None
        end = start
        first = max(bisect_right(self._starts, start) - 1, 0)
        for i in range(first, len(self._segments)):
            t0, t1, power = self._segments[i]
            if t1 <= start:
                continue
            if predicate(power):
                ext = power if ext is None else extremum_fn(ext, power)
                end = t1
            elif end > start:
                break
        return Interval(start, end, ext if ext is not None else 0.0)

    # ------------------------------------------------------------------
    # energy integrals
    # ------------------------------------------------------------------

    def energy(self) -> float:
        """Total energy ``integral P(t) dt`` in joules."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_energy(self)
        return sum((t1 - t0) * p for t0, t1, p in self._segments)

    def energy_above(self, level: float) -> float:
        """``integral max(0, P(t) - level) dt`` — energy drawn *above*
        a supply level (the paper's energy cost when ``level = P_min``)."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_energy_above(self, level)
        return sum((t1 - t0) * (p - level)
                   for t0, t1, p in self._segments if p > level)

    def energy_capped(self, level: float) -> float:
        """``integral min(P(t), level) dt`` — energy absorbed from a
        source capped at ``level`` (free-solar usage when
        ``level = P_min``)."""
        if _kernel.use_numpy(len(self._segments), _kernel.AUTO_MIN_SEGMENTS):
            return _kernel.np_energy_capped(self, level)
        return sum((t1 - t0) * min(p, level) for t0, t1, p in self._segments)

    # ------------------------------------------------------------------
    # arithmetic / composition
    # ------------------------------------------------------------------

    def restricted(self, t0: int, t1: int) -> "PowerProfile":
        """The profile over ``[t0, t1)``, re-zeroed to start at 0."""
        if not 0 <= t0 < t1 <= self.horizon:
            raise ValidationError(
                f"restriction [{t0}, {t1}) outside domain "
                f"[0, {self.horizon})")
        segs = []
        for s0, s1, p in self._segments:
            lo, hi = max(s0, t0), min(s1, t1)
            if lo < hi:
                segs.append((lo - t0, hi - t0, p))
        return PowerProfile(segs, baseline=self.baseline)

    @staticmethod
    def concatenate(profiles: "list[PowerProfile]",
                    baseline: "float | None" = None) -> "PowerProfile":
        """Join profiles back to back (mission-level power curve).

        The joined profile's reported ``baseline`` is the first
        profile's (all parts of one mission share the same always-on
        load); concatenating profiles with *different* baselines is
        ambiguous — no single constant describes the result — so it is
        rejected unless an explicit ``baseline`` override says which
        value the joined curve should report.  (The segment powers
        themselves already include each part's baseline and are joined
        verbatim either way.)
        """
        explicit = baseline is not None
        segs: "list[tuple[int, int, float]]" = []
        offset = 0
        for prof in profiles:
            if baseline is None:
                baseline = prof.baseline
            elif not explicit and prof.baseline != baseline:
                raise ValidationError(
                    f"cannot concatenate profiles with mixed baselines "
                    f"({baseline:g} W vs {prof.baseline:g} W); pass an "
                    f"explicit baseline= to pick the reported value")
            for t0, t1, p in prof.segments:
                segs.append((t0 + offset, t1 + offset, p))
            offset += prof.horizon
        return PowerProfile(segs,
                            baseline=baseline if baseline is not None
                            else 0.0)

    def sampled(self, step: int = 1) -> "list[float]":
        """Sample ``P(t)`` every ``step`` units (for plotting/tests)."""
        if step <= 0:
            raise ValidationError(f"step must be positive, got {step}")
        return [self.value(t) for t in range(0, self.horizon, step)]

    def __repr__(self) -> str:
        return (f"PowerProfile(horizon={self.horizon}, "
                f"peak={self.peak():g}W, segments={len(self._segments)})")
