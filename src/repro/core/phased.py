"""Phased tasks: power as a function over time.

Section 4.1 notes that a task's power consumption may be "a function
over time" and that the formulation extends to that case.  On the
integer grid any such function is piecewise constant, so a *phased
task* — e.g. a motor with an inrush phase followed by a cruise phase —
is modelled exactly as a rigid chain of constant-power segments:

* one sub-task per phase, all on the parent's resource,
* consecutive phases tied with an *equality* separation (min == max ==
  predecessor duration), so the chain can neither stretch nor tear:
  delaying any segment moves the whole task.

The schedulers need no changes: slack, spikes, gaps and energy all fall
out of the existing profile machinery.  Helper queries map between the
parent task name and its segments.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GraphError
from .graph import ConstraintGraph
from .schedule import Schedule
from .task import Task

__all__ = ["add_phased_task", "phase_names", "phased_start",
           "is_phase_of"]

#: Separator between the parent name and the phase index.  Kept out of
#: ordinary task names by convention.
_SEP = "#"


def add_phased_task(graph: ConstraintGraph, name: str,
                    phases: "Sequence[tuple[int, float]]",
                    resource: "str | None" = None) -> "list[Task]":
    """Add a task whose power varies over time.

    ``phases`` is a sequence of ``(duration, power)`` segments executed
    back to back.  Returns the created sub-tasks in execution order.
    The first sub-task (``name#0``) is the handle for constraints that
    reference the task's *start*; the last for its *finish*.

    Example — a drive motor with a 2 s inrush at 20 W then 8 s at
    12 W::

        add_phased_task(g, "drive", [(2, 20.0), (8, 12.0)],
                        resource="wheels")
        g.add_min_separation("steer", "drive#0", 5)
    """
    if _SEP in name:
        raise GraphError(
            f"task name {name!r} must not contain {_SEP!r}")
    if not phases:
        raise GraphError(f"phased task {name!r} needs at least one phase")
    created: "list[Task]" = []
    for index, (duration, power) in enumerate(phases):
        if duration <= 0:
            raise GraphError(
                f"phase {index} of {name!r} must have positive "
                f"duration, got {duration}")
        task = graph.new_task(
            f"{name}{_SEP}{index}", duration=duration, power=power,
            resource=resource,
            meta={"phased_parent": name, "phase_index": index,
                  "phase_count": len(phases)})
        created.append(task)
    for prev, nxt in zip(created, created[1:]):
        # equality separation: the chain is rigid
        graph.add_separation_window(prev.name, nxt.name,
                                    prev.duration, prev.duration,
                                    tag="phase")
    return created


def phase_names(name: str, count: int) -> "list[str]":
    """The sub-task names of a phased task."""
    return [f"{name}{_SEP}{i}" for i in range(count)]


def is_phase_of(task: Task, name: str) -> bool:
    """True when ``task`` is a segment of the phased task ``name``."""
    return task.meta.get("phased_parent") == name


def phased_start(schedule: Schedule, name: str) -> int:
    """Start time of a phased task (its first segment)."""
    first = f"{name}{_SEP}0"
    if first not in schedule:
        raise GraphError(f"{name!r} is not a phased task in this "
                         "schedule")
    return schedule.start(first)
