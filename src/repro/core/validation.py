"""Schedule validation: time-validity and power-validity.

The paper's definitions (Sections 4.1–4.2):

* A schedule is **time-valid** when every min/max separation encoded in
  the constraint graph holds *and* tasks sharing a resource never
  overlap.
* A schedule is **power-valid** (or simply *valid*) when it is
  time-valid and its power profile never exceeds ``P_max``.

The validators return structured violation reports rather than just
booleans so tests, the CLI, and EXPERIMENTS.md tables can show *why* a
schedule failed.  ``assert_*`` variants raise :class:`ValidationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from .profile import PowerProfile
from .schedule import Schedule

__all__ = ["Violation", "ValidationReport", "check_time_valid",
           "check_power_valid", "assert_time_valid", "assert_power_valid"]


@dataclass(frozen=True)
class Violation:
    """One broken constraint.

    ``kind`` is one of ``"separation"``, ``"resource"``, ``"spike"``.
    """

    kind: str
    detail: str


@dataclass
class ValidationReport:
    """Outcome of validating a schedule."""

    violations: "list[Violation]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind=kind, detail=detail))

    def raise_if_failed(self) -> None:
        if not self.ok:
            lines = "\n  ".join(v.detail for v in self.violations)
            raise ValidationError(
                f"schedule validation failed "
                f"({len(self.violations)} violation(s)):\n  {lines}")

    def __bool__(self) -> bool:
        return self.ok


def check_time_valid(schedule: Schedule) -> ValidationReport:
    """Check every separation edge and resource exclusivity."""
    report = ValidationReport()
    graph = schedule.graph
    anchor = graph.anchor.name

    def start_of(name: str) -> int:
        return 0 if name == anchor else schedule.start(name)

    for edge in graph.edges():
        gap = start_of(edge.dst) - start_of(edge.src)
        if gap < edge.weight:
            report.add(
                "separation",
                f"sigma({edge.dst}) - sigma({edge.src}) = {gap} violates "
                f">= {edge.weight} (edge tag {edge.tag!r})")

    for resource in graph.resources.names:
        for u, v in schedule.overlapping_on_resource(resource):
            report.add(
                "resource",
                f"tasks {u.name!r} and {v.name!r} overlap on shared "
                f"resource {resource!r} "
                f"([{schedule.start(u.name)}, {schedule.finish(u.name)}) vs "
                f"[{schedule.start(v.name)}, {schedule.finish(v.name)}))")
    return report


def check_power_valid(schedule: Schedule, p_max: float,
                      baseline: float = 0.0) -> ValidationReport:
    """Time-validity plus the hard max-power constraint."""
    report = check_time_valid(schedule)
    profile = PowerProfile.from_schedule(schedule, baseline=baseline)
    for spike in profile.spikes(p_max):
        report.add(
            "spike",
            f"power spike {spike}: profile exceeds P_max = {p_max:g} W")
    return report


def assert_time_valid(schedule: Schedule) -> None:
    """Raise :class:`ValidationError` unless the schedule is time-valid."""
    check_time_valid(schedule).raise_if_failed()


def assert_power_valid(schedule: Schedule, p_max: float,
                       baseline: float = 0.0) -> None:
    """Raise unless the schedule is time-valid and under ``P_max``."""
    check_power_valid(schedule, p_max, baseline=baseline).raise_if_failed()
