"""Solver-core kernel selection: reference oracle vs numpy fast path.

The longest-path solver and the power-profile integrals each exist in
two implementations:

* the **oracle** — the original pure-Python code, kept verbatim as the
  reference semantics (and as the only implementation when numpy is
  unavailable);
* the **numpy kernel** — vectorized passes over the struct-of-arrays
  views of :mod:`repro.core.arrays`.

The kernel is *certified against* the oracle, not trusted: the
differential suite (``tests/test_core_kernel.py``) asserts bit-identical
distances, spikes/gaps, energy integrals, and exceptions on the Fig. 1
grid and randomized workloads.  Two design rules make bit-identity
attainable rather than approximate:

1. longest-path distances are integers, and Bellman–Ford's least
   fixpoint is unique — so *any* relaxation order (the oracle's
   sequential sweep, the kernel's Jacobi ``reduceat`` passes) converges
   to the same numbers;
2. float reductions replay the oracle's left-to-right summation order
   (``sum(terms.tolist())``) instead of pairwise/compensated schemes,
   so every energy integral is the same IEEE-754 result.

On instances the kernel finds infeasible it raises
:class:`KernelInfeasible`, and the caller re-runs the oracle to produce
the *exact* reference exception (message and traced cycle included) —
fast path and oracle are indistinguishable to exception handlers.

Selection is per process: :func:`set_kernel` / the ``REPRO_CORE_KERNEL``
environment variable (``oracle`` | ``numpy`` | ``auto``; ``auto``
resolves to numpy when importable).  The warm-start machinery —
rollback state restores, copy-carried caches, and the cross-point warm
pool below — is gated separately by :func:`set_warm` /
``REPRO_CORE_WARM`` so benchmarks can measure either lever alone.
Both knobs flow through ``repro.engine.RunnerConfig`` to serial,
pooled, and sharded workers alike.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from typing import Any

from .arrays import HAVE_NUMPY, graph_arrays, profile_arrays
from .task import ANCHOR_NAME

if HAVE_NUMPY:
    import numpy as _np

__all__ = ["KERNEL_MODES", "KernelInfeasible", "kernel_mode",
           "set_kernel", "use_numpy", "warm_enabled", "set_warm",
           "np_longest_paths", "np_energy", "np_energy_above",
           "np_energy_capped", "np_is_power_valid", "np_peak",
           "np_floor", "np_spike_runs", "np_gap_runs",
           "warm_probe", "warm_store", "clear_warm_pool"]

#: Valid kernel selections.  ``auto`` resolves to ``numpy`` when numpy
#: imports, ``oracle`` otherwise.
KERNEL_MODES = ("auto", "oracle", "numpy")

#: ``auto`` crossover sizes: below these the pure-Python oracle beats
#: the numpy kernel (fixed per-call array overhead dominates tiny
#: instances), so ``auto`` only engages the kernel above them.  The
#: ``numpy`` mode ignores the floors — the differential suite forces it
#: to certify the kernel on small instances too.
AUTO_MIN_VERTICES = 48
AUTO_MIN_SEGMENTS = 128


class KernelInfeasible(Exception):
    """Internal: the numpy kernel detected a positive cycle.

    Never escapes :func:`repro.core.longest_path.longest_paths` — the
    caller re-runs the pure-Python oracle, which raises the canonical
    :class:`~repro.errors.PositiveCycleError` with the reference
    message and traced cycle.
    """


def _env_mode() -> str:
    raw = os.environ.get("REPRO_CORE_KERNEL", "auto").strip().lower()
    return raw if raw in KERNEL_MODES else "auto"


def _env_warm() -> bool:
    raw = os.environ.get("REPRO_CORE_WARM", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_mode = _env_mode()
_warm = _env_warm()


def kernel_mode() -> str:
    """The raw kernel selection currently in force (may be ``auto``)."""
    return _mode


def set_kernel(mode: "str | None") -> str:
    """Select the solver kernel; returns the previous selection.

    ``None`` restores the environment default.  Per-process state:
    worker processes each set their own copy (see
    ``repro.engine.jobs.run_job``).
    """
    global _mode
    if mode is None:
        mode = _env_mode()
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}")
    previous = _mode
    _mode = mode
    return previous


def use_numpy(size: "int | None" = None,
              floor: "int | None" = None) -> bool:
    """True when this call should take the numpy fast path.

    ``numpy`` mode forces the kernel whenever numpy imports; ``auto``
    additionally requires the instance size (``size`` elements against
    the ``floor`` crossover, when both are given) to be large enough
    that the kernel actually wins.
    """
    if _mode == "numpy":
        return HAVE_NUMPY
    if _mode == "auto":
        if not HAVE_NUMPY:
            return False
        if size is None or floor is None:
            return True
        return size >= floor
    return False


def warm_enabled() -> bool:
    """True when warm-started re-solves are enabled."""
    return _warm


def set_warm(enabled: "bool | None") -> bool:
    """Enable/disable warm-started re-solves; returns previous state.

    ``None`` restores the environment default.
    """
    global _warm
    previous = _warm
    _warm = _env_warm() if enabled is None else bool(enabled)
    return previous


# ----------------------------------------------------------------------
# cross-point warm pool
#
# Sweep grids re-solve the *same* user graph under different power
# constraints: every (P_max, P_min) point copies the problem graph and
# starts with an identical full longest-path solve.  The pool memoizes
# that fixpoint keyed by the source graph's identity and version (the
# copy records where it came from), so every point after the first
# starts from the previous point's distances — the warm-started
# re-solve of the ISSUE, exact rather than approximate because the
# fixpoint of an identical edge set is identical.
# ----------------------------------------------------------------------

#: Bound on memoized source-graph states (FIFO eviction).
WARM_POOL_LIMIT = 64

_WARM_POOL: "OrderedDict[Any, tuple[int, dict, dict]]" = OrderedDict()


def warm_probe(key: Any, n_vertices: int) \
        -> "tuple[dict, dict] | None":
    """Stored ``(distance, predecessor)`` fixpoint for ``key``, if any.

    ``n_vertices`` re-checks the vertex count: tasks are append-only,
    so an equal count under an identical source version implies an
    identical vertex set.
    """
    entry = _WARM_POOL.get(key)
    if entry is None or entry[0] != n_vertices:
        return None
    _WARM_POOL.move_to_end(key)
    return entry[1], entry[2]


def warm_store(key: Any, n_vertices: int, dist: dict,
               pred: dict) -> None:
    """Memoize a solved fixpoint under a source-graph key."""
    _WARM_POOL[key] = (n_vertices, dist, pred)
    _WARM_POOL.move_to_end(key)
    while len(_WARM_POOL) > WARM_POOL_LIMIT:
        _WARM_POOL.popitem(last=False)


def clear_warm_pool() -> None:
    """Drop every memoized fixpoint (tests and benchmarks)."""
    _WARM_POOL.clear()


# ----------------------------------------------------------------------
# longest paths: Jacobi relaxation over destination-grouped arrays
# ----------------------------------------------------------------------

def np_longest_paths(graph) -> "tuple[dict, dict]":
    """Vectorized longest-path fixpoint of ``graph``.

    One pass relaxes *every* edge simultaneously (Jacobi iteration):
    after ``k`` passes each distance is the best walk of at most ``k``
    edges, so with ``n`` vertices and no positive cycle the unique
    least fixpoint is reached within ``n - 1`` passes — the same
    integer distances the oracle's sequential sweep produces, whatever
    the relaxation order.  A distance still improvable after ``n``
    passes, or an anchor pushed past time 0, certifies a positive
    cycle: :class:`KernelInfeasible` is raised and the caller re-runs
    the oracle for the canonical exception.

    Returns plain-Python ``({name: int}, {name: str | None})`` dicts.
    The predecessor of each vertex is the source of one *tight* edge on
    a breadth-first walk from the distance-0 vertices, so every
    ``critical_path`` chain is a genuine witness path (the oracle may
    pick a different — equally valid — witness).
    """
    arr = graph_arrays(graph)
    n = len(arr.names)
    dist = _np.zeros(n, dtype=_np.int64)
    anchor = arr.index[ANCHOR_NAME]
    if arr.edge_count:
        src, weight = arr.src, arr.weight
        starts, targets = arr.group_starts, arr.group_dst
        for _ in range(n):
            best = _np.maximum.reduceat(dist[src] + weight, starts)
            current = dist[targets]
            if not (best > current).any():
                break
            dist[targets] = _np.maximum(current, best)
            if dist[anchor] > 0:
                raise KernelInfeasible("anchor pushed past time 0")
        else:
            if (dist[src] + weight > dist[arr.dst]).any():
                raise KernelInfeasible("still relaxable after n passes")
    distance = dict(zip(arr.names, dist.tolist()))
    return distance, _np_predecessors(arr, dist)


def _np_predecessors(arr, dist) -> "dict[str, str | None]":
    """Witness predecessors via tight-edge BFS from distance-0 roots.

    At the fixpoint every vertex with a positive distance lies on a
    witness path from the anchor whose edges are all *tight*
    (``dist[src] + w == dist[dst]`` — were a prefix slack, the endpoint
    could improve).  A BFS over tight edges from the distance-0 set
    therefore reaches every vertex, and its tree is acyclic by
    construction, so predecessor chains always terminate.
    """
    pred: "dict[str, str | None]" = {name: None for name in arr.names}
    if not arr.edge_count:
        return pred
    tight = dist[arr.src] + arr.weight == dist[arr.dst]
    t_src = arr.src[tight].tolist()
    t_dst = arr.dst[tight].tolist()
    out: "dict[int, list[int]]" = {}
    for s, d in zip(t_src, t_dst):
        out.setdefault(s, []).append(d)
    settled = (dist == 0)
    frontier = deque(_np.flatnonzero(settled).tolist())
    names = arr.names
    while frontier:
        s = frontier.popleft()
        for d in out.get(s, ()):
            if not settled[d]:
                settled[d] = True
                pred[names[d]] = names[s]
                frontier.append(d)
    return pred


# ----------------------------------------------------------------------
# profile integrals and level scans
#
# Bit-identity rule: vectorize the *elementwise* arithmetic (identical
# IEEE-754 operations in either implementation) but replay the oracle's
# left-to-right ``sum`` over the resulting Python floats — never a
# pairwise or compensated reduction, which would change low-order bits.
# ----------------------------------------------------------------------

def np_energy(profile) -> float:
    a = profile_arrays(profile)
    if not a.segment_count:
        return sum(())
    return sum(((a.t1 - a.t0) * a.power).tolist())


def np_energy_above(profile, level: float) -> float:
    a = profile_arrays(profile)
    if not a.segment_count:
        return sum(())
    terms = (a.t1 - a.t0) * (a.power - level)
    return sum(terms[a.power > level].tolist())


def np_energy_capped(profile, level: float) -> float:
    a = profile_arrays(profile)
    if not a.segment_count:
        return sum(())
    return sum(((a.t1 - a.t0)
                * _np.minimum(a.power, level)).tolist())


def np_is_power_valid(profile, p_max: float, tol: float) -> bool:
    a = profile_arrays(profile)
    return bool((a.power <= p_max + tol).all())


def np_peak(profile) -> float:
    a = profile_arrays(profile)
    return float(a.power.max()) if a.segment_count else 0.0


def np_floor(profile) -> float:
    a = profile_arrays(profile)
    return float(a.power.min()) if a.segment_count else 0.0


def _np_runs(mask) -> "list":
    """Maximal runs of consecutive True segments, as index arrays."""
    idx = _np.flatnonzero(mask)
    if not idx.size:
        return []
    splits = _np.flatnonzero(_np.diff(idx) > 1) + 1
    return _np.split(idx, splits)


def np_spike_runs(profile, p_max: float, tol: float) \
        -> "list[tuple[int, int, float]]":
    """``(start, end, peak)`` of every maximal above-budget run."""
    a = profile_arrays(profile)
    return [(int(a.t0[run[0]]), int(a.t1[run[-1]]),
             float(a.power[run].max()))
            for run in _np_runs(a.power > p_max + tol)]


def np_gap_runs(profile, p_min: float, tol: float) \
        -> "list[tuple[int, int, float]]":
    """``(start, end, floor)`` of every maximal below-level run."""
    a = profile_arrays(profile)
    return [(int(a.t0[run[0]]), int(a.t1[run[-1]]),
             float(a.power[run].min()))
            for run in _np_runs(a.power < p_min - tol)]
