"""Single-source longest path over the constraint graph.

The timing scheduler (paper Fig. 3) assigns each candidate vertex the
length of the longest path from the anchor.  Because max separations are
negative-weight edges the graph is cyclic in general, so we use a
Bellman–Ford style relaxation: longest paths are well defined exactly
when the graph has no *positive* cycle, and a positive cycle certifies
that the timing constraints are contradictory.

Every vertex also has an implicit ``anchor -> v`` edge of weight 0
(nothing starts before time 0), which doubles as the source of
reachability, so distances are always finite.

Complexity: O(V * E).  The schedulers call this after each batch of edge
insertions; for the paper-scale instances (tens of tasks) this is
instantaneous, and for the synthetic benchmarks (hundreds of tasks) it
remains comfortably fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InfeasibleError, PositiveCycleError
from ..obs import OBS
from .graph import ConstraintGraph
from .task import ANCHOR_NAME

__all__ = ["LongestPathResult", "longest_paths", "earliest_starts",
           "latest_starts", "lp_counter_snapshot", "lp_counters_delta"]

# ----------------------------------------------------------------------
# observability: per-process counters of how each longest-path query was
# answered.  The power-aware pipeline snapshots these around each stage
# and folds the deltas into SchedulerStats; the batch engine then
# surfaces them in its JSON traces.  Per-process globals are safe here:
# worker processes each get their own copy, and within a process the
# solver runs under the GIL.
# ----------------------------------------------------------------------

_COUNTERS = {"cache_hits": 0, "incremental_runs": 0, "full_runs": 0,
             "log_evictions": 0}


def lp_counter_snapshot() -> "dict[str, int]":
    """A copy of the process-wide longest-path counters."""
    return dict(_COUNTERS)


def lp_counters_delta(snapshot: "dict[str, int]") -> "dict[str, int]":
    """Counter increments since ``snapshot`` was taken."""
    return {key: _COUNTERS[key] - snapshot.get(key, 0)
            for key in _COUNTERS}


@dataclass(frozen=True)
class LongestPathResult:
    """Longest-path distances from the anchor.

    ``distance[v]`` is the length of the longest constraint path from the
    anchor to ``v`` — equivalently the *earliest* start time of ``v``
    consistent with all separations, assuming every other task is also
    as early as possible.  ``predecessor[v]`` is the vertex preceding
    ``v`` on one such path (``None`` for the anchor itself or for
    vertices pinned only by the implicit time-0 edge).
    """

    distance: "dict[str, int]"
    predecessor: "dict[str, str | None]"

    def critical_path(self, name: str) -> "list[str]":
        """The vertex chain (anchor excluded) realizing ``distance[name]``."""
        chain: "list[str]" = []
        cur: "str | None" = name
        seen: "set[str]" = set()
        while cur is not None and cur != ANCHOR_NAME and cur not in seen:
            seen.add(cur)
            chain.append(cur)
            cur = self.predecessor.get(cur)
        chain.reverse()
        return chain


def longest_paths(graph: ConstraintGraph) -> LongestPathResult:
    """Compute longest-path distances from the anchor to every vertex.

    Transparently incremental: the result is cached on the graph, and
    when every mutation since the cached version was an edge *addition*
    (the schedulers' hot path — delays, locks, serializations between
    rollbacks), distances can only grow, so only the delta is
    propagated with a worklist instead of re-running Bellman–Ford.
    Removals and rollbacks invalidate the fast path (they can shrink
    distances) and fall back to the full computation.

    Raises
    ------
    PositiveCycleError
        If the constraint graph contains a positive cycle (the timing
        constraints are unsatisfiable).  The exception carries one
        offending cycle when it can be traced.
    """
    names = graph.task_names(include_anchor=True)
    cache = graph._lp_cache
    if cache is not None:
        version, dist, pred = cache
        if version == graph._version and len(dist) == len(names):
            _COUNTERS["cache_hits"] += 1
            return LongestPathResult(distance=dict(dist),
                                     predecessor=dict(pred))
        # The incremental fast path is sound only under three invariants:
        #
        # 1. every mutation since the cached version was an edge
        #    *addition* (``version >= _last_non_add_version``) — removals
        #    and rollbacks can shrink distances, which a grow-only
        #    worklist cannot express;
        # 2. the vertex set is unchanged (``len(dist) == len(names)``) —
        #    ``add_task`` does not bump the edge version, so a new
        #    vertex is only visible through this length check;
        # 3. the add log still covers *every* version since the cache
        #    (``len(adds) == _version - version``; each addition bumps
        #    the version by exactly one, so the count equality holds iff
        #    no addition is missing).  ``ConstraintGraph.add_edge`` trims
        #    the front half of ``_add_log`` once it outgrows a bound
        #    (graph.py), so a sufficiently stale cache falls out of the
        #    log window, fails this check, and takes the full recompute
        #    below — trimming can cost speed, never correctness.
        if version >= graph._last_non_add_version \
                and len(dist) == len(names):
            adds = [entry for entry in graph._add_log
                    if entry[0] > version]
            if len(adds) == graph._version - version:
                result = _propagate_adds(graph, dict(dist), dict(pred),
                                         adds, names)
                if result is not None:
                    _COUNTERS["incremental_runs"] += 1
                    graph._lp_cache = (graph._version,
                                       result.distance,
                                       result.predecessor)
                    return LongestPathResult(
                        distance=dict(result.distance),
                        predecessor=dict(result.predecessor))
            else:
                # Invariants 1 and 2 held but the add log no longer
                # covers every version since the cache: the cache fell
                # out of the trimmed log window (graph.py's bounded
                # ``_add_log``).  Count it so workloads can tell these
                # forced recomputes apart from genuinely invalidated
                # caches (removals / rollbacks / new vertices).
                _COUNTERS["log_evictions"] += 1
    try:
        _COUNTERS["full_runs"] += 1
        if OBS.enabled:
            # Spans only for the expensive path: full Bellman–Ford
            # recomputes are the O(V*E) events worth seeing on a
            # flamegraph; cache hits and incremental propagations stay
            # counters (they fire thousands of times per solve).
            with OBS.span("core.longest_path.full",
                          vertices=len(names)):
                return _full_longest_paths(graph, names)
        return _full_longest_paths(graph, names)
    except PositiveCycleError:
        graph._lp_cache = None
        raise


def _propagate_adds(graph, dist, pred, adds, names) \
        -> "LongestPathResult | None":
    """Worklist relaxation of newly-added edges over cached distances.

    Returns None when a new vertex appeared (cache unusable).  Raises
    :class:`PositiveCycleError` when the relaxation diverges, after
    invalidating the cache.
    """
    from collections import deque

    limit = len(names)
    queue: "deque[str]" = deque()
    counts: "dict[str, int]" = {}

    def relax(src: str, dst: str, weight: int) -> None:
        cand = dist[src] + weight
        if cand > dist[dst]:
            dist[dst] = cand
            pred[dst] = src
            counts[dst] = counts.get(dst, 0) + 1
            if counts[dst] > limit or \
                    (dst == ANCHOR_NAME and dist[dst] > 0):
                graph._lp_cache = None
                raise PositiveCycleError(
                    "timing constraints contain a positive cycle "
                    f"(incremental relaxation diverged at {dst!r})")
            queue.append(dst)

    for _, src, dst, weight in adds:
        if src not in dist or dst not in dist:
            return None  # pragma: no cover - new-vertex guard
        relax(src, dst, weight)
    edges = graph._edges
    out = graph._out
    while queue:
        src = queue.popleft()
        for dst in out.get(src, ()):
            entry = edges.get((src, dst))
            if entry is not None:
                relax(src, dst, entry[0])
    if dist[ANCHOR_NAME] > 0:
        graph._lp_cache = None
        raise PositiveCycleError(
            "timing constraints force the anchor past time 0 "
            "(deadline chain is unsatisfiable)")
    return LongestPathResult(distance=dist, predecessor=pred)


def _full_longest_paths(graph: ConstraintGraph,
                        names: "list[str]") -> LongestPathResult:
    dist: "dict[str, int]" = {name: 0 for name in names}
    pred: "dict[str, str | None]" = {name: None for name in names}
    edges = graph.edge_triples()

    changed = True
    for _ in range(len(names)):
        if not changed:
            break
        changed = False
        for src, dst, weight in edges:
            cand = dist[src] + weight
            if cand > dist[dst]:
                dist[dst] = cand
                pred[dst] = src
                changed = True
        if dist[ANCHOR_NAME] > 0:
            # The anchor is the fixed time origin; any constraint chain
            # that forces it later than 0 (e.g. serialization into a
            # start deadline) is contradictory — equivalent to a
            # positive cycle through the implicit anchor edges.
            raise PositiveCycleError(
                "timing constraints force the anchor past time 0 "
                "(deadline chain is unsatisfiable)",
                cycle=_trace_cycle(pred, ANCHOR_NAME))
    if changed:
        # One more pass would still relax: positive cycle.  Trace it via
        # the predecessor chain from any still-relaxable endpoint.
        for src, dst, weight in edges:
            if dist[src] + weight > dist[dst]:
                raise PositiveCycleError(
                    "timing constraints contain a positive cycle "
                    f"(reached via edge {src!r} -> {dst!r})",
                    cycle=_trace_cycle(pred, dst))
    # Distances can never be negative: the implicit time-0 edges put a
    # floor of 0 under every vertex, which the initialization encodes.
    graph._lp_cache = (graph._version, dict(dist), dict(pred))
    return LongestPathResult(distance=dist, predecessor=pred)


def _trace_cycle(pred: "dict[str, str | None]", start: str) -> "list[str]":
    """Walk predecessors from ``start`` until a vertex repeats."""
    seen: "dict[str, int]" = {}
    chain: "list[str]" = []
    cur: "str | None" = start
    while cur is not None and cur not in seen:
        seen[cur] = len(chain)
        chain.append(cur)
        cur = pred.get(cur)
    if cur is None:
        return chain  # best effort; relaxation order hid the cycle body
    return chain[seen[cur]:]


def earliest_starts(graph: ConstraintGraph) -> "dict[str, int]":
    """ASAP start times: the longest-path distances themselves."""
    result = longest_paths(graph)
    return {name: result.distance[name] for name in graph.task_names()}


def latest_starts(graph: ConstraintGraph, horizon: int) -> "dict[str, int]":
    """ALAP start times against a finish-time horizon.

    Computed as ``horizon_slot(v) - longest_path(v -> sinks)`` via a
    reverse relaxation: for each edge ``sigma(dst) - sigma(src) >= w``
    the latest start of ``src`` is bounded by ``late[dst] - w``.  Every
    task must also finish by ``horizon``.

    Used by the exhaustive scheduler to bound its search and by the
    analysis layer to report global slack windows.
    """
    names = graph.task_names(include_anchor=True)
    late: "dict[str, int]" = {}
    for name in names:
        task = graph.task(name)
        late[name] = horizon - task.duration
    late[ANCHOR_NAME] = 0
    edges = graph.edge_triples()

    changed = True
    for _ in range(len(names) + 1):
        if not changed:
            break
        changed = False
        for src, dst, weight in edges:
            cand = late[dst] - weight
            if cand < late[src]:
                late[src] = cand
                changed = True
    if changed:
        raise PositiveCycleError(
            "timing constraints contain a positive cycle "
            "(detected during ALAP relaxation)")
    if late[ANCHOR_NAME] < 0 or any(
            late[name] < 0 for name in graph.task_names()):
        raise InfeasibleError(
            f"horizon {horizon} is too short for the timing "
            "constraints (a latest start would be negative)")
    return {name: late[name] for name in graph.task_names()}
