"""Single-source longest path over the constraint graph.

The timing scheduler (paper Fig. 3) assigns each candidate vertex the
length of the longest path from the anchor.  Because max separations are
negative-weight edges the graph is cyclic in general, so we use a
Bellman–Ford style relaxation: longest paths are well defined exactly
when the graph has no *positive* cycle, and a positive cycle certifies
that the timing constraints are contradictory.

Every vertex also has an implicit ``anchor -> v`` edge of weight 0
(nothing starts before time 0), which doubles as the source of
reachability, so distances are always finite.

Complexity: O(V * E) for a cold solve.  The schedulers call this after
each batch of edge insertions, and most calls are answered far cheaper
than a cold solve, in order of preference:

1. **exact cache hit** — the graph version is unchanged;
2. **incremental propagation** — every mutation since the cache was an
   edge addition, so only the delta is relaxed with a worklist;
3. **state restore** — the graph just rolled back to a
   previously-solved journal state whose fixpoint was memoized;
4. **warm-pool hit** — the graph is a fresh copy of a source graph
   whose fixpoint another solve (e.g. the neighboring sweep point)
   already computed;
5. **full solve** — the numpy kernel (:mod:`repro.core.kernel`) when
   selected, the pure-Python oracle otherwise.

Layers 3–5's fast variants are gated by :func:`repro.core.kernel`'s
``warm``/kernel switches; with both off, behaviour is exactly the
original two-layer cache.  All layers return the same integer
distances — the Bellman–Ford least fixpoint of an edge set is unique —
which the differential suite certifies bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

from ..errors import InfeasibleError, PositiveCycleError
from ..obs import OBS
from . import kernel as _kernel
from .graph import ConstraintGraph
from .kernel import KernelInfeasible
from .task import ANCHOR_NAME

__all__ = ["LongestPathResult", "longest_paths", "earliest_starts",
           "latest_starts", "lp_counter_snapshot", "lp_counters_delta"]

# ----------------------------------------------------------------------
# observability: per-process counters of how each longest-path query was
# answered.  The power-aware pipeline snapshots these around each stage
# and folds the deltas into SchedulerStats; the batch engine then
# surfaces them in its JSON traces.  Per-process globals are safe here:
# worker processes each get their own copy, and within a process the
# solver runs under the GIL.
# ----------------------------------------------------------------------

_COUNTERS = {"cache_hits": 0, "incremental_runs": 0, "full_runs": 0,
             "log_evictions": 0, "kernel_runs": 0, "state_restores": 0,
             "warm_hits": 0, "probe_prunes": 0}

#: Bound on memoized journal states per graph (oldest half evicted).
_STATE_CACHE_LIMIT = 256


def lp_counter_snapshot() -> "dict[str, int]":
    """A copy of the process-wide longest-path counters."""
    return dict(_COUNTERS)


def lp_counters_delta(snapshot: "dict[str, int]") -> "dict[str, int]":
    """Counter increments since ``snapshot`` was taken."""
    return {key: _COUNTERS[key] - snapshot.get(key, 0)
            for key in _COUNTERS}


@dataclass(frozen=True)
class LongestPathResult:
    """Longest-path distances from the anchor.

    ``distance[v]`` is the length of the longest constraint path from the
    anchor to ``v`` — equivalently the *earliest* start time of ``v``
    consistent with all separations, assuming every other task is also
    as early as possible.  ``predecessor[v]`` is the vertex preceding
    ``v`` on one such path (``None`` for the anchor itself or for
    vertices pinned only by the implicit time-0 edge).

    Both mappings are **read-only views** over the solver's cache
    (:class:`types.MappingProxyType`): lookups and iteration behave
    like dicts, mutation raises ``TypeError``.  The solver used to copy
    both dicts on every cache hit — thousands of O(V) copies per solve
    — and no caller ever mutated them; the views make that contract
    explicit and free.  Callers needing a private mutable mapping take
    an explicit ``dict(result.distance)``.
    """

    distance: "dict[str, int]"
    predecessor: "dict[str, str | None]"

    def critical_path(self, name: str) -> "list[str]":
        """The vertex chain (anchor excluded) realizing ``distance[name]``."""
        chain: "list[str]" = []
        cur: "str | None" = name
        seen: "set[str]" = set()
        while cur is not None and cur != ANCHOR_NAME and cur not in seen:
            seen.add(cur)
            chain.append(cur)
            cur = self.predecessor.get(cur)
        chain.reverse()
        return chain


def _view(dist: dict, pred: dict) -> LongestPathResult:
    """Wrap cached dicts as an immutable result, copy-free."""
    return LongestPathResult(distance=MappingProxyType(dist),
                             predecessor=MappingProxyType(pred))


def longest_paths(graph: ConstraintGraph, *, probe: bool = False) \
        -> "LongestPathResult | None":
    """Compute longest-path distances from the anchor to every vertex.

    Transparently incremental — see the module docstring for the
    answer ladder (exact hit, incremental delta, rollback state
    restore, cross-copy warm pool, full solve).  The result is a
    read-only view over the graph-attached cache.

    With ``probe=True`` the call is a *feasibility probe*: it returns
    None instead of raising on infeasible edge sets.  Scheduler search
    loops that catch :class:`PositiveCycleError` purely as a boolean
    (try a move, back off on contradiction) probe instead, which lets
    the warm layers prune infeasible branches from a *certified*
    contradiction witness — a positive-weight closed walk through the
    anchor, or a predecessor cycle whose edge weights sum positive —
    without paying the reference oracle for an exception message nobody
    reads.  An uncertified divergence still falls through to the full
    solve, so a probe never misreports feasibility either way.  On
    feasible graphs probes return the same distances as plain calls.

    Raises
    ------
    PositiveCycleError
        (Only when ``probe`` is False.)  If the constraint graph
        contains a positive cycle (the timing constraints are
        unsatisfiable).  The exception carries one offending cycle when
        it can be traced, and is byte-identical whichever layer
        detected the contradiction: the incremental and kernel paths
        fall back to the reference oracle to raise.
    """
    # Equivalent to task_names(include_anchor=True) — the anchor is the
    # first inserted vertex — without materializing Task objects on
    # every query (this is the solver's hottest entry point).
    names = list(graph._tasks)
    cache = graph._lp_cache
    if cache is not None:
        version, dist, pred = cache
        if version == graph._version and len(dist) == len(names):
            _COUNTERS["cache_hits"] += 1
            return _view(dist, pred)
        # The incremental fast path is sound only under three invariants:
        #
        # 1. every mutation since the cached version was an edge
        #    *addition* (``version >= _last_non_add_version``) — removals
        #    and rollbacks can shrink distances, which a grow-only
        #    worklist cannot express;
        # 2. the vertex set is unchanged (``len(dist) == len(names)``) —
        #    ``add_task`` does not bump the edge version, so a new
        #    vertex is only visible through this length check;
        # 3. the add log still covers *every* version since the cache
        #    (``len(adds) == _version - version``; each addition bumps
        #    the version by exactly one, so the count equality holds iff
        #    no addition is missing).  ``ConstraintGraph.add_edge`` trims
        #    the front half of ``_add_log`` once it outgrows a bound
        #    (graph.py), so a sufficiently stale cache falls out of the
        #    log window, fails this check, and takes the full recompute
        #    below — trimming can cost speed, never correctness.
        if version >= graph._last_non_add_version \
                and len(dist) == len(names):
            adds = [entry for entry in graph._add_log
                    if entry[0] > version]
            if len(adds) == graph._version - version:
                try:
                    propagated = _propagate_adds(graph, dict(dist),
                                                 dict(pred), adds,
                                                 names)
                except _Diverged as diverged:
                    if probe and _certified_infeasible(graph, diverged):
                        _COUNTERS["probe_prunes"] += 1
                        graph._lp_cache = None
                        return None
                    propagated = None
                if propagated is not None:
                    _COUNTERS["incremental_runs"] += 1
                    new_dist, new_pred = propagated
                    graph._lp_cache = (graph._version, new_dist,
                                       new_pred)
                    if _kernel.warm_enabled():
                        _remember_state(graph, new_dist, new_pred)
                    return _view(new_dist, new_pred)
            else:
                # Invariants 1 and 2 held but the add log no longer
                # covers every version since the cache: the cache fell
                # out of the trimmed log window (graph.py's bounded
                # ``_add_log``).  Count it so workloads can tell these
                # forced recomputes apart from genuinely invalidated
                # caches (removals / rollbacks / new vertices).
                _COUNTERS["log_evictions"] += 1
    warm = _kernel.warm_enabled()
    if warm:
        restored = _restore_from_journal(graph, names, probe)
        if restored is _INFEASIBLE:
            _COUNTERS["probe_prunes"] += 1
            graph._lp_cache = None
            return None
        if restored is not None:
            return restored
        if graph._warm_src is not None \
                and graph._version == graph._warm_at_version:
            hit = _kernel.warm_probe(graph._warm_src, len(names))
            if hit is not None:
                _COUNTERS["warm_hits"] += 1
                dist, pred = hit
                graph._lp_cache = (graph._version, dist, pred)
                _remember_state(graph, dist, pred)
                return _view(dist, pred)
    try:
        _COUNTERS["full_runs"] += 1
        if OBS.enabled:
            # Spans only for the expensive path: full solves are the
            # O(V*E) events worth seeing on a flamegraph; cache hits
            # and incremental propagations stay counters (they fire
            # thousands of times per solve).
            with OBS.span("core.longest_path.full",
                          vertices=len(names)):
                dist, pred = _solve_full(graph, names)
        else:
            dist, pred = _solve_full(graph, names)
    except PositiveCycleError:
        graph._lp_cache = None
        if probe:
            return None
        raise
    graph._lp_cache = (graph._version, dist, pred)
    if warm:
        _remember_state(graph, dist, pred)
        if graph._warm_src is not None \
                and graph._version == graph._warm_at_version:
            _kernel.warm_store(graph._warm_src, len(names), dist, pred)
    return _view(dist, pred)


def _solve_full(graph: ConstraintGraph, names: "list[str]") \
        -> "tuple[dict, dict]":
    """Cold solve through the selected kernel.

    The numpy kernel computes the identical integer fixpoint; when it
    detects infeasibility the oracle re-runs to raise the canonical
    exception (or, defensively, to return the correct result should
    the kernel ever flag a feasible instance).
    """
    if _kernel.use_numpy(len(names), _kernel.AUTO_MIN_VERTICES):
        try:
            dist, pred = _kernel.np_longest_paths(graph)
        except KernelInfeasible:
            result = _full_longest_paths(graph, names)
            return result.distance, result.predecessor
        _COUNTERS["kernel_runs"] += 1
        return dist, pred
    result = _full_longest_paths(graph, names)
    return result.distance, result.predecessor


#: How far below the current journal length the restore layer looks for
#: a memoized prefix to replay forward from.  The scheduler hot loops
#: (serial DFS, spike elimination, compaction) roll back and retry a
#: handful of edges at a time, so a short window catches them; anything
#: deeper falls through to a full solve.
_REPLAY_WINDOW = 32

#: Sentinel returned by :func:`_restore_from_journal` when a probe
#: certified the current edge set infeasible (distinct from None =
#: "layer not applicable, fall through").
_INFEASIBLE = object()


class _Diverged(Exception):
    """Internal: incremental relaxation suspects a positive cycle.

    ``certain`` is True when the divergence itself is a proof of
    infeasibility (the anchor's distance became positive, i.e. an
    actual positive-weight closed walk through the fixed time origin
    was relaxed).  Otherwise ``dst``/``pred`` carry the state needed to
    attempt certification via :func:`_certified_infeasible`.
    """

    def __init__(self, dst: "str | None", pred: dict,
                 certain: bool) -> None:
        super().__init__("relaxation diverged")
        self.dst = dst
        self.pred = pred
        self.certain = certain


def _certified_infeasible(graph: ConstraintGraph,
                          diverged: _Diverged) -> bool:
    """True when the divergence comes with a verifiable contradiction.

    A relaxation count overflow alone is only a *suspicion* (worklist
    relaxation can legitimately improve a vertex many times), so probes
    confirm it by walking the predecessor chain from the overflowing
    vertex: if it closes a cycle and the cycle's edge weights (read
    from the live edge store) sum positive, the graph provably has no
    fixpoint.  An inconclusive walk returns False and the caller pays
    the full solve — certification failure costs speed, never a wrong
    feasibility verdict.
    """
    if diverged.certain:
        return True
    if diverged.dst is None:
        return False
    pred = diverged.pred
    seen: "dict[str, int]" = {}
    chain: "list[str]" = []
    cur: "str | None" = diverged.dst
    while cur is not None and cur not in seen:
        seen[cur] = len(chain)
        chain.append(cur)
        cur = pred.get(cur)
    if cur is None:
        return False
    cycle = chain[seen[cur]:] + [cur]
    edges = graph._edges
    total = 0
    for dst_v, src_v in zip(cycle, cycle[1:]):
        entry = edges.get((src_v, dst_v))
        if entry is None:
            return False
        total += entry[0]
    return total > 0


def _restore_from_journal(graph: ConstraintGraph, names: "list[str]",
                          probe: bool = False):
    """Answer from a memoized journal state, replaying the suffix.

    The edge set is a pure function of the journal prefix, and
    ``rollback`` drops memos above the restored token — so a surviving
    journal-length key names exactly the edge set at that prefix.  An
    exact-length hit restores the fixpoint outright.  A *shorter*
    memoized prefix is still usable when every journal entry since it
    is monotone (edges only created or tightened — ``add_edge`` keeps
    the max weight, so this is the common case): distances only grow,
    and worklist relaxation of the changed edges over the memoized
    fixpoint reaches the current least fixpoint.  Any weakening or
    removal in the suffix disqualifies the layer — and disqualifies
    every shorter prefix too, so the scan stops there.

    Returns the restored view, None to fall through to the warm pool /
    full solve, or :data:`_INFEASIBLE` when a probing caller's replay
    diverged with a certified contradiction.  Never raises on
    infeasible instances: a non-probe diverging replay returns None so
    the oracle raises canonically.
    """
    state_cache = graph._state_cache
    if not state_cache:
        return None
    journal = graph._journal
    length = len(journal)
    for key in range(length, max(length - _REPLAY_WINDOW, 0) - 1, -1):
        entry = state_cache.get(key)
        if entry is None:
            continue
        if entry[0] != len(names):
            return None  # vertex set changed since every older memo
        _, dist, pred = entry
        if key == length:
            _COUNTERS["state_restores"] += 1
            graph._lp_cache = (graph._version, dist, pred)
            return _view(dist, pred)
        # Net change per touched pair: weight at memo time is the
        # *first* journaled prev for the pair (None = absent), current
        # weight is the live edge store.
        first_prev: "dict[tuple, Any]" = {}
        for edge_key, prev in journal[key:]:
            if edge_key not in first_prev:
                first_prev[edge_key] = prev
        edges = graph._edges
        adds = []
        for edge_key, prev in first_prev.items():
            current = edges.get(edge_key)
            if current is None:
                if prev is None:
                    continue  # created then removed: net no-op
                return None  # removed since the memo: not monotone
            old_weight = None if prev is None else prev[0]
            if old_weight is None or current[0] > old_weight:
                adds.append((0, edge_key[0], edge_key[1], current[0]))
            elif current[0] < old_weight:
                return None  # weakened since the memo: not monotone
        if not adds:
            new_dist, new_pred = dist, pred
        else:
            try:
                propagated = _propagate_adds(graph, dict(dist),
                                             dict(pred), adds, names)
            except _Diverged as diverged:
                if probe and _certified_infeasible(graph, diverged):
                    return _INFEASIBLE
                return None
            if propagated is None:
                return None
            new_dist, new_pred = propagated
        _COUNTERS["state_restores"] += 1
        graph._lp_cache = (graph._version, new_dist, new_pred)
        _remember_state(graph, new_dist, new_pred)
        return _view(new_dist, new_pred)
    return None


def _remember_state(graph: ConstraintGraph, dist: dict,
                    pred: dict) -> None:
    """Memoize the solved fixpoint under the current journal length.

    ``ConstraintGraph.rollback`` drops memos above the restored token
    and ``strip_tags`` clears them, so a surviving key always names the
    exact current edge set.  The dicts are shared with ``_lp_cache``
    and never mutated in place (the incremental path copies first).
    """
    state_cache = graph._state_cache
    state_cache[len(graph._journal)] = (len(dist), dist, pred)
    if len(state_cache) > _STATE_CACHE_LIMIT:
        doomed = list(state_cache)[:_STATE_CACHE_LIMIT // 2]
        for key in doomed:
            del state_cache[key]


def _propagate_adds(graph, dist, pred, adds, names) \
        -> "tuple[dict, dict] | None":
    """Worklist relaxation of newly-added edges over cached distances.

    Returns the updated ``(distance, predecessor)`` dicts, or None when
    the cached state is unusable (a new vertex appeared).  Divergence —
    a suspected positive cycle — raises :class:`_Diverged` instead,
    carrying whether the divergence is a proof (positive closed walk
    through the anchor) or needs certification.  Non-probing callers
    treat any divergence as "fall through to the full solve", whose
    oracle raises the canonical :class:`PositiveCycleError` (message
    and traced cycle included) — so infeasibility reported through a
    warm cache is byte-identical to a cold solve, and a false-positive
    divergence guard costs a recompute, never a wrong exception.
    """
    from collections import deque

    limit = len(names)
    queue: "deque[str]" = deque()
    queued: "set[str]" = set()
    counts: "dict[str, int]" = {}

    def relax(src: str, dst: str, weight: int) -> None:
        cand = dist[src] + weight
        if cand > dist[dst]:
            dist[dst] = cand
            pred[dst] = src
            counts[dst] = counts.get(dst, 0) + 1
            if dst == ANCHOR_NAME and dist[dst] > 0:
                # Every relaxed value is the length of a real walk from
                # the anchor, so a positive anchor distance certifies a
                # positive closed walk — infeasibility proven.
                raise _Diverged(dst, pred, certain=True)
            if counts[dst] > limit:
                raise _Diverged(dst, pred, certain=False)
            # A vertex already awaiting processing is processed with
            # its *latest* distance, so re-enqueueing it only clones
            # work — without this guard the queue blows up
            # combinatorially on dense deltas (and loops millions of
            # times before a positive cycle trips the count limit).
            if dst not in queued:
                queued.add(dst)
                queue.append(dst)

    for _, src, dst, weight in adds:
        if src not in dist or dst not in dist:
            return None  # pragma: no cover - new-vertex guard
        relax(src, dst, weight)
    edges = graph._edges
    out = graph._out
    # Edge weights are fixed for the duration of one propagation, so the
    # adjacency of each popped vertex is snapshotted on first visit;
    # near-infeasible instances pop every vertex up to ``limit`` times
    # and would otherwise repeat the tuple-key edge lookups each pass.
    adj: "dict[str, list]" = {}
    while queue:
        src = queue.popleft()
        queued.discard(src)
        row = adj.get(src)
        if row is None:
            row = [(dst, entry[0])
                   for dst in out.get(src, ())
                   for entry in (edges.get((src, dst)),)
                   if entry is not None]
            adj[src] = row
        base = dist[src]
        for dst, weight in row:
            cand = base + weight
            if cand > dist[dst]:
                dist[dst] = cand
                pred[dst] = src
                count = counts.get(dst, 0) + 1
                counts[dst] = count
                if dst == ANCHOR_NAME and cand > 0:
                    raise _Diverged(dst, pred, certain=True)
                if count > limit:
                    raise _Diverged(dst, pred, certain=False)
                if dst not in queued:
                    queued.add(dst)
                    queue.append(dst)
    if dist[ANCHOR_NAME] > 0:  # pragma: no cover - relax() raises first
        raise _Diverged(ANCHOR_NAME, pred, certain=True)
    return dist, pred


def _full_longest_paths(graph: ConstraintGraph,
                        names: "list[str]") -> LongestPathResult:
    dist: "dict[str, int]" = {name: 0 for name in names}
    pred: "dict[str, str | None]" = {name: None for name in names}
    edges = graph.edge_triples()

    changed = True
    for _ in range(len(names)):
        if not changed:
            break
        changed = False
        for src, dst, weight in edges:
            cand = dist[src] + weight
            if cand > dist[dst]:
                dist[dst] = cand
                pred[dst] = src
                changed = True
        if dist[ANCHOR_NAME] > 0:
            # The anchor is the fixed time origin; any constraint chain
            # that forces it later than 0 (e.g. serialization into a
            # start deadline) is contradictory — equivalent to a
            # positive cycle through the implicit anchor edges.
            raise PositiveCycleError(
                "timing constraints force the anchor past time 0 "
                "(deadline chain is unsatisfiable)",
                cycle=_trace_cycle(pred, ANCHOR_NAME))
    if changed:
        # One more pass would still relax: positive cycle.  Trace it via
        # the predecessor chain from any still-relaxable endpoint.
        for src, dst, weight in edges:
            if dist[src] + weight > dist[dst]:
                raise PositiveCycleError(
                    "timing constraints contain a positive cycle "
                    f"(reached via edge {src!r} -> {dst!r})",
                    cycle=_trace_cycle(pred, dst))
    # Distances can never be negative: the implicit time-0 edges put a
    # floor of 0 under every vertex, which the initialization encodes.
    return LongestPathResult(distance=dist, predecessor=pred)


def _trace_cycle(pred: "dict[str, str | None]", start: str) -> "list[str]":
    """Walk predecessors from ``start`` until a vertex repeats."""
    seen: "dict[str, int]" = {}
    chain: "list[str]" = []
    cur: "str | None" = start
    while cur is not None and cur not in seen:
        seen[cur] = len(chain)
        chain.append(cur)
        cur = pred.get(cur)
    if cur is None:
        return chain  # best effort; relaxation order hid the cycle body
    return chain[seen[cur]:]


def earliest_starts(graph: ConstraintGraph) -> "dict[str, int]":
    """ASAP start times: the longest-path distances themselves."""
    result = longest_paths(graph)
    return {name: result.distance[name] for name in graph.task_names()}


def latest_starts(graph: ConstraintGraph, horizon: int) -> "dict[str, int]":
    """ALAP start times against a finish-time horizon.

    Computed as ``horizon_slot(v) - longest_path(v -> sinks)`` via a
    reverse relaxation: for each edge ``sigma(dst) - sigma(src) >= w``
    the latest start of ``src`` is bounded by ``late[dst] - w``.  Every
    task must also finish by ``horizon``.

    Used by the exhaustive scheduler to bound its search and by the
    analysis layer to report global slack windows.
    """
    names = graph.task_names(include_anchor=True)
    late: "dict[str, int]" = {}
    for name in names:
        task = graph.task(name)
        late[name] = horizon - task.duration
    late[ANCHOR_NAME] = 0
    edges = graph.edge_triples()

    changed = True
    for _ in range(len(names) + 1):
        if not changed:
            break
        changed = False
        for src, dst, weight in edges:
            cand = late[dst] - weight
            if cand < late[src]:
                late[src] = cand
                changed = True
    if changed:
        raise PositiveCycleError(
            "timing constraints contain a positive cycle "
            "(detected during ALAP relaxation)")
    if late[ANCHOR_NAME] < 0 or any(
            late[name] < 0 for name in graph.task_names()):
        raise InfeasibleError(
            f"horizon {horizon} is too short for the timing "
            "constraints (a latest start would be negative)")
    return {name: late[name] for name in graph.task_names()}
