"""Execution resources.

The paper maps tasks onto a heterogeneous resource set ``R`` that
includes not only computing elements but any exclusive power consumer —
mechanical subsystems, heaters, a laser ranger.  A resource here is just
a named, single-server mutual-exclusion domain: two tasks with the same
resource may never overlap in time.

Resources optionally carry an *idle power*; the sum of idle powers of
all resources plus the problem's explicit baseline forms the constant
floor of the power profile (the rover's CPU is modelled this way: Table 2
lists it as a constant consumer rather than a schedulable task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import GraphError

__all__ = ["Resource", "ResourcePool"]


@dataclass(frozen=True)
class Resource:
    """A single-server execution resource.

    Parameters
    ----------
    name:
        Unique resource identifier.
    idle_power:
        Constant power drawn even when no task runs on the resource
        (watts, ``>= 0``).  Contributes to the profile baseline.
    kind:
        Free-form category ("mechanical", "thermal", "digital", ...);
        informational only.
    meta:
        Free-form annotations.
    """

    name: str
    idle_power: float = 0.0
    kind: str = "generic"
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("resource name must be a non-empty string")
        if self.idle_power < 0:
            raise GraphError(
                f"resource {self.name!r}: idle_power must be >= 0, "
                f"got {self.idle_power}")


class ResourcePool:
    """An ordered, name-indexed collection of :class:`Resource`.

    The pool preserves insertion order so Gantt-chart rows come out in a
    stable, author-controlled order.
    """

    def __init__(self, resources: "list[Resource] | None" = None):
        self._by_name: "dict[str, Resource]" = {}
        for res in resources or []:
            self.add(res)

    def add(self, resource: Resource) -> Resource:
        """Register a resource; duplicate names are an error."""
        if resource.name in self._by_name:
            raise GraphError(f"duplicate resource {resource.name!r}")
        self._by_name[resource.name] = resource
        return resource

    def ensure(self, name: str, **kwargs: Any) -> Resource:
        """Return the named resource, creating a default one if absent."""
        if name not in self._by_name:
            self._by_name[name] = Resource(name=name, **kwargs)
        return self._by_name[name]

    def __getitem__(self, name: str) -> Resource:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"unknown resource {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> "list[str]":
        """Resource names in insertion order."""
        return list(self._by_name)

    @property
    def total_idle_power(self) -> float:
        """Sum of idle powers across the pool (profile floor)."""
        return sum(res.idle_power for res in self._by_name.values())
