"""Infeasibility diagnosis: explain *why* constraints contradict.

A bare :class:`~repro.errors.PositiveCycleError` tells a designer that
their timing constraints are unsatisfiable; it does not tell them which
of their requirements are fighting.  This module walks the offending
cycle, maps each edge back to its origin (user constraint vs scheduler
decoration), and renders the contradiction as an inequality chain a
human can act on:

    infeasible: the following constraints force sigma(b) > sigma(b):
      sigma(b) >= sigma(a) + 5   [user]     (b at least 5 after a)
      sigma(a) >= sigma(b) - 3   [user]     (a at most 3 after... )
      net slack around the cycle: +2  -- tighten by removing >= 2 s

Used by the CLI for `solve` failures and available as a library call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PositiveCycleError
from .graph import ConstraintGraph
from .longest_path import longest_paths
from .task import ANCHOR_NAME

__all__ = ["CycleExplanation", "explain_infeasibility", "find_cycle"]


@dataclass(frozen=True)
class CycleExplanation:
    """A positive cycle rendered as human-readable constraints."""

    vertices: "list[str]"
    lines: "list[str]"
    excess: int

    def render(self) -> str:
        chain = " -> ".join(self.vertices + [self.vertices[0]])
        body = "\n".join(f"  {line}" for line in self.lines)
        return (f"infeasible timing constraints (cycle {chain}):\n"
                f"{body}\n"
                f"  net over-constraint: {self.excess} time unit(s) — "
                f"relax the chain by at least that much")


def find_cycle(graph: ConstraintGraph) -> "list[str] | None":
    """A vertex list forming one positive cycle, or None if feasible.

    Uses the longest-path solver's predecessor trace; falls back to a
    bounded walk when the trace is partial.
    """
    try:
        longest_paths(graph)
        return None
    except PositiveCycleError as exc:
        if exc.cycle:
            cycle = _close_cycle(graph, exc.cycle)
            if cycle:
                return cycle
        return _search_cycle(graph)


def explain_infeasibility(graph: ConstraintGraph) \
        -> "CycleExplanation | None":
    """Explain the graph's infeasibility, or None when it is feasible."""
    cycle = find_cycle(graph)
    if not cycle:
        return None
    lines = []
    total = 0
    for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
        weight = graph.separation(src, dst)
        if weight is None:
            continue
        tag = graph.edge_tag(src, dst)
        total += weight
        lines.append(_describe_edge(src, dst, weight, tag))
    return CycleExplanation(vertices=cycle, lines=lines, excess=total)


# ----------------------------------------------------------------------

def _describe_edge(src: str, dst: str, weight: int, tag: str) -> str:
    if src == ANCHOR_NAME:
        meaning = f"{dst} may not start before t={weight}"
        formal = f"sigma({dst}) >= {weight}"
    elif dst == ANCHOR_NAME:
        meaning = f"{src} must start by t={-weight}"
        formal = f"sigma({src}) <= {-weight}"
    elif weight >= 0:
        meaning = f"{dst} at least {weight} after {src}"
        formal = f"sigma({dst}) >= sigma({src}) + {weight}"
    else:
        meaning = f"{src} at most {-weight} after {dst}"
        formal = f"sigma({dst}) >= sigma({src}) - {-weight}"
    return f"{formal:36s} [{tag}]  ({meaning})"


def _close_cycle(graph: ConstraintGraph,
                 trace: "list[str]") -> "list[str] | None":
    """Trim a predecessor trace to an actual edge cycle when possible."""
    if len(trace) >= 2 and graph.separation(trace[-1], trace[0]) \
            is not None:
        chain_ok = all(graph.separation(u, v) is not None
                       for u, v in zip(trace, trace[1:]))
        if chain_ok:
            return trace
    return None


def _search_cycle(graph: ConstraintGraph) -> "list[str] | None":
    """Exhaustive positive-cycle search (small graphs, diagnosis only).

    Bellman-Ford tells us a cycle exists; to display it, walk
    predecessor chains until a vertex repeats, taking the repeated
    segment.  This re-runs the relaxation with full bookkeeping.
    """
    names = graph.task_names(include_anchor=True)
    dist = {name: 0 for name in names}
    pred: "dict[str, str | None]" = {name: None for name in names}
    edges = graph.edge_triples()
    for _ in range(len(names) + 1):
        changed = False
        for src, dst, weight in edges:
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                pred[dst] = src
                changed = True
        if not changed:
            return None  # pragma: no cover - caller saw a cycle
    # some vertex is on or reachable from a cycle: walk back V steps
    for start in names:
        cur = start
        for _ in range(len(names)):
            nxt = pred.get(cur)
            if nxt is None:
                break
            cur = nxt
        else:
            # cur is inside a cycle: collect it
            cycle = [cur]
            node = pred[cur]
            while node is not None and node != cur:
                cycle.append(node)
                node = pred[node]
            cycle.reverse()
            if len(cycle) >= 2:
                return cycle
    return None  # pragma: no cover - defensive
