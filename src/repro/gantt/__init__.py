"""Power-aware Gantt charts (paper Section 4.3).

Dual time/power views of a schedule, with an ASCII renderer for
terminals and a dependency-free SVG renderer for documents.  Build a
chart from any schedule (or directly from a
:class:`~repro.scheduling.base.ScheduleResult` via :func:`chart_result`)
and render it with either backend.
"""

from ..scheduling.base import ScheduleResult
from .ascii_art import render_chart, render_power_view, render_time_view
from .html import render_html_report, write_html_report
from .mission_chart import (MissionTrack, render_mission_svg,
                            write_mission_svg)
from .model import Bin, GanttChart
from .svg import render_svg, write_svg

__all__ = [
    "Bin",
    "GanttChart",
    "MissionTrack",
    "chart_result",
    "render_chart",
    "render_html_report",
    "render_mission_svg",
    "render_power_view",
    "render_svg",
    "render_time_view",
    "write_html_report",
    "write_mission_svg",
    "write_svg",
]


def chart_result(result: ScheduleResult, title: str = "") -> GanttChart:
    """Build a chart straight from a scheduler result."""
    problem = result.problem
    return GanttChart(schedule=result.schedule, p_max=problem.p_max,
                      p_min=problem.p_min, baseline=problem.baseline,
                      title=title or f"{problem.name} [{result.stage}]")
