"""The power-aware Gantt chart model (paper Section 4.3).

A schedule is presented in two coordinated views sharing the time axis:

* **time view** — one row per execution resource; each task is a *bin*
  starting at ``sigma(v)`` with length ``d(v)`` and height ``p(v)``, so
  the bin's area is the task's energy;
* **power view** — the bins collapsed onto the power axis: the profile
  ``P_sigma(t)`` with the ``P_max``/``P_min`` levels and the resulting
  spikes and gaps annotated, plus the per-task composition of each
  profile segment (which consumer contributes what, at every time).

The model is renderer-agnostic; :mod:`repro.gantt.ascii_art` draws it in
a terminal and :mod:`repro.gantt.svg` writes standalone SVG files.  It
also offers the interactive primitive the paper describes for the
IMPACCT tool — *drag a bin to another slot and observe the power view* —
as :meth:`GanttChart.with_bin_moved`, which revalidates and rebuilds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.profile import Interval, PowerProfile
from ..core.schedule import Schedule
from ..core.slack import slack_table
from ..core.validation import check_time_valid
from ..errors import ValidationError

__all__ = ["Bin", "GanttChart"]


@dataclass(frozen=True)
class Bin:
    """One task occurrence in the time view."""

    task: str
    resource: str
    start: int
    duration: int
    power: float
    slack: int

    @property
    def end(self) -> int:
        return self.start + self.duration

    @property
    def energy(self) -> float:
        """Bin area = the task's energy in joules."""
        return self.duration * self.power


@dataclass
class GanttChart:
    """A schedule prepared for dual-view rendering."""

    schedule: Schedule
    p_max: float
    p_min: float
    baseline: float = 0.0
    title: str = ""
    rows: "dict[str, list[Bin]]" = field(default_factory=dict)
    profile: "PowerProfile | None" = None

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = PowerProfile.from_schedule(
                self.schedule, baseline=self.baseline)
        if not self.rows:
            self.rows = self._build_rows()
        if not self.title:
            self.title = self.schedule.graph.name

    # ------------------------------------------------------------------

    def _build_rows(self) -> "dict[str, list[Bin]]":
        graph = self.schedule.graph
        slacks = slack_table(self.schedule)
        rows: "dict[str, list[Bin]]" = {
            name: [] for name in graph.resources.names}
        rows.setdefault("(unmapped)", [])
        for name, start in self.schedule.items():
            task = graph.task(name)
            if task.duration == 0:
                continue
            row = task.resource if task.resource is not None \
                else "(unmapped)"
            rows.setdefault(row, []).append(Bin(
                task=name, resource=row, start=start,
                duration=task.duration, power=task.power,
                slack=slacks[name]))
        for bins in rows.values():
            bins.sort(key=lambda b: (b.start, b.task))
        if not rows["(unmapped)"]:
            del rows["(unmapped)"]
        return rows

    # ------------------------------------------------------------------
    # power-view annotations
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Chart time extent (the schedule's finish time)."""
        return self.profile.horizon

    def spikes(self) -> "list[Interval]":
        """Hard violations to display (above ``P_max``)."""
        return self.profile.spikes(self.p_max)

    def gaps(self) -> "list[Interval]":
        """Soft violations to display (below ``P_min``)."""
        return self.profile.gaps(self.p_min)

    def composition_at(self, t: int) -> "list[tuple[str, float]]":
        """The power stack at time ``t``: baseline first, then each
        active task's contribution (the power view's composition)."""
        stack = []
        total_baseline = self.baseline + \
            self.schedule.graph.resources.total_idle_power
        if total_baseline > 0:
            stack.append(("(baseline)", total_baseline))
        for task in self.schedule.active_tasks(t):
            if task.power > 0:
                stack.append((task.name, task.power))
        return stack

    def annotations(self) -> "Mapping[str, object]":
        """Summary annotations shown in both renderers."""
        return {
            "P_max": self.p_max,
            "P_min": self.p_min,
            "tau": self.horizon,
            "peak": self.profile.peak(),
            "energy": self.profile.energy(),
            "energy_cost": self.profile.energy_above(self.p_min),
            "spikes": len(self.spikes()),
            "gaps": len(self.gaps()),
        }

    # ------------------------------------------------------------------
    # interactive what-if (the paper's drag-a-bin exploration)
    # ------------------------------------------------------------------

    def with_bin_moved(self, task: str, new_start: int) -> "GanttChart":
        """A new chart with one bin dragged to ``new_start``.

        Raises :class:`ValidationError` when the move breaks a timing
        constraint or resource exclusivity — the tool refuses an
        illegal drag; power violations are allowed (they show up as
        spikes, which is the point of the exploration).
        """
        moved = self.schedule.with_start(task, new_start)
        report = check_time_valid(moved)
        if not report.ok:
            raise ValidationError(
                f"cannot move {task!r} to t={new_start}: "
                + report.violations[0].detail)
        return GanttChart(schedule=moved, p_max=self.p_max,
                          p_min=self.p_min, baseline=self.baseline,
                          title=self.title)
