"""HTML report: several power-aware Gantt charts on one page.

The IMPACCT framework the paper describes is an interactive design
tool; the closest useful artifact a library can produce is a
self-contained HTML report — every chart's SVG inlined, with its
metric annotations — that a designer can open, zoom, and diff across
design alternatives.  Used by the rover example and handy for design
reviews of sweep results.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from .model import GanttChart
from .svg import render_svg

__all__ = ["render_html_report", "write_html_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; }
h2 { font-size: 1.1em; margin-top: 2em; border-bottom: 1px solid #ccc; }
.meta { color: #555; font-size: 0.9em; margin-bottom: 0.6em; }
.chart { overflow-x: auto; border: 1px solid #eee; padding: 4px; }
"""


def render_html_report(charts: "list[GanttChart]",
                       title: str = "Power-aware schedules") -> str:
    """A standalone HTML document with every chart inlined as SVG."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
    ]
    for chart in charts:
        ann = chart.annotations()
        meta = (f"P_max={ann['P_max']:g} W &middot; "
                f"P_min={ann['P_min']:g} W &middot; "
                f"tau={ann['tau']} s &middot; "
                f"Ec={ann['energy_cost']:.1f} J &middot; "
                f"spikes={ann['spikes']} &middot; gaps={ann['gaps']}")
        parts.append(f"<h2>{escape(chart.title)}</h2>")
        parts.append(f"<div class='meta'>{meta}</div>")
        parts.append(f"<div class='chart'>{render_svg(chart)}</div>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(charts: "list[GanttChart]", path: str,
                      title: str = "Power-aware schedules") -> str:
    """Render and write the report; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html_report(charts, title=title))
    return path
