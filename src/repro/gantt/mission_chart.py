"""Mission timeline chart: consumption vs solar supply over a mission.

Figs. 9-11 show single-iteration power views; the Table 4 story —
cover ground while the sun shines — only becomes visible on the
mission-level curve.  This renderer draws, over the whole mission:

* the solar supply line (the free-power ceiling, stepping down),
* each iteration's consumed-power profile, colour-split at the supply
  level: energy below the line is free (green), above is battery
  (red),
* iteration boundaries with step counts.

Accepts any :class:`~repro.mission.simulator.MissionReport` whose
iterations carry plans with profiles — which requires re-running the
policies, so the chart builder takes the policy objects and mirrors the
simulator's stepping.  A simpler array-based entry point
(:func:`render_mission_svg`) is exposed for custom pipelines.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from ..power.solar import SolarModel

__all__ = ["MissionTrack", "render_mission_svg", "write_mission_svg"]

_MARGIN = 56
_HEIGHT = 220
_PX_PER_SECOND = 0.55
_LEGEND_H = 40


class MissionTrack:
    """The drawable data of one mission: (time, power) step samples."""

    def __init__(self, label: str):
        self.label = label
        #: list of (t0, t1, consumed_watts)
        self.segments: "list[tuple[float, float, float]]" = []
        #: iteration boundary times with annotations
        self.boundaries: "list[tuple[float, str]]" = []

    def add_profile(self, profile, start_time: float,
                    note: str = "") -> None:
        """Append one iteration's profile at an absolute start time."""
        for t0, t1, level in profile.segments:
            self.segments.append((start_time + t0, start_time + t1,
                                  level))
        self.boundaries.append((start_time, note))

    @property
    def end_time(self) -> float:
        return self.segments[-1][1] if self.segments else 0.0


def render_mission_svg(track: MissionTrack, solar: SolarModel,
                       title: str = "") -> str:
    """The mission curve as a standalone SVG document."""
    end = max(track.end_time, 1.0)
    peak = max([level for _, _, level in track.segments] +
               [solar.power(t) for t, _ in track.boundaries] + [1.0])
    width = int(end * _PX_PER_SECOND) + 2 * _MARGIN
    height = _HEIGHT + 2 * _MARGIN + _LEGEND_H
    scale_y = _HEIGHT / (peak * 1.15)
    base_y = _MARGIN + _HEIGHT

    def x_of(t: float) -> float:
        return _MARGIN + t * _PX_PER_SECOND

    def y_of(watts: float) -> float:
        return base_y - watts * scale_y

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{_MARGIN}" y="{_MARGIN - 22}" font-size="15" '
        f'font-weight="bold">{escape(title or track.label)}</text>',
        f'<line x1="{_MARGIN}" y1="{base_y}" x2="{x_of(end):.1f}" '
        f'y2="{base_y}" stroke="#333"/>',
        f'<line x1="{_MARGIN}" y1="{_MARGIN}" x2="{_MARGIN}" '
        f'y2="{base_y}" stroke="#333"/>',
    ]

    # consumption bars, split at the solar level
    for t0, t1, level in track.segments:
        if t1 <= t0:
            continue
        solar_level = solar.power(t0)
        free = min(level, solar_level)
        excess = max(level - solar_level, 0.0)
        x, w = x_of(t0), (t1 - t0) * _PX_PER_SECOND
        if free > 0:
            parts.append(
                f'<rect x="{x:.1f}" y="{y_of(free):.1f}" '
                f'width="{w:.2f}" height="{free * scale_y:.1f}" '
                f'fill="#74b06f" stroke="none"/>')
        if excess > 0:
            parts.append(
                f'<rect x="{x:.1f}" y="{y_of(level):.1f}" '
                f'width="{w:.2f}" height="{excess * scale_y:.1f}" '
                f'fill="#d9644a" stroke="none"/>')

    # the solar supply line
    points = []
    step = max(end / 400.0, 1.0)
    t = 0.0
    while t <= end:
        points.append(f"{x_of(t):.1f},{y_of(solar.power(t)):.1f}")
        t += step
    parts.append(
        f'<polyline points="{" ".join(points)}" fill="none" '
        'stroke="#e2a72e" stroke-width="2"/>')
    parts.append(
        f'<text x="{x_of(end) + 4:.1f}" '
        f'y="{y_of(solar.power(end)) + 4:.1f}" fill="#b07d0f">solar'
        '</text>')

    # iteration boundaries
    for t, note in track.boundaries:
        parts.append(
            f'<line x1="{x_of(t):.1f}" y1="{_MARGIN}" '
            f'x2="{x_of(t):.1f}" y2="{base_y}" stroke="#bbb" '
            'stroke-dasharray="2,4"/>')
        if note:
            parts.append(
                f'<text x="{x_of(t) + 2:.1f}" y="{_MARGIN + 10}" '
                f'fill="#777" font-size="9">{escape(note)}</text>')

    # legend + axis labels
    legend_y = base_y + 26
    parts.append(
        f'<rect x="{_MARGIN}" y="{legend_y - 9}" width="10" '
        'height="10" fill="#74b06f"/>')
    parts.append(
        f'<text x="{_MARGIN + 14}" y="{legend_y}">free (solar) '
        'energy</text>')
    parts.append(
        f'<rect x="{_MARGIN + 140}" y="{legend_y - 9}" width="10" '
        'height="10" fill="#d9644a"/>')
    parts.append(
        f'<text x="{_MARGIN + 154}" y="{legend_y}">battery energy'
        '</text>')
    for frac in (0.0, 0.5, 1.0):
        watts = peak * frac
        parts.append(
            f'<text x="{_MARGIN - 40}" y="{y_of(watts) + 4:.1f}" '
            f'fill="#555">{watts:.0f}W</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_mission_svg(track: MissionTrack, solar: SolarModel,
                      path: str, title: str = "") -> str:
    """Render and write the mission chart; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_mission_svg(track, solar, title=title))
    return path
