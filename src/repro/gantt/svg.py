"""SVG renderer for power-aware Gantt charts.

Writes a standalone SVG file showing the two coordinated views exactly
as the paper draws them (Figs. 2, 5, 7, 9-11): the time view on top
(task bins per resource row, bin height proportional to power) and the
power view below (the stacked profile with the ``P_max`` / ``P_min``
levels, spikes hatched red, gaps shaded blue).

matplotlib is not available in this environment, so the SVG is emitted
by hand; the format is simple enough that hand-rolling it keeps the
renderer dependency-free and the output deterministic (tests assert on
the generated markup).
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from .model import GanttChart

__all__ = ["render_svg", "write_svg"]

# Layout constants (pixels).
_MARGIN = 50
_ROW_BASE = 26          # minimum row height for the time view
_POWER_VIEW_H = 180
_PX_PER_SECOND = 9
_PX_PER_WATT = 6
_GAP_BETWEEN_VIEWS = 34

_PALETTE = ["#4c78a8", "#f58518", "#54a24b", "#b79a20", "#439894",
            "#e45756", "#d67195", "#b279a2", "#9e765f", "#7970ce"]


def render_svg(chart: GanttChart) -> str:
    """The chart as an SVG document string."""
    horizon = max(chart.horizon, 1)
    peak = max(chart.profile.peak(), chart.p_max)
    time_w = horizon * _PX_PER_SECOND
    rows = list(chart.rows.items())
    row_heights = []
    for _, bins in rows:
        tallest = max((b.power for b in bins), default=1.0)
        row_heights.append(max(_ROW_BASE,
                               int(tallest * _PX_PER_WATT) + 8))
    time_view_h = sum(row_heights) + 6 * len(rows)
    width = time_w + 2 * _MARGIN + 60
    height = (time_view_h + _POWER_VIEW_H + _GAP_BETWEEN_VIEWS
              + 2 * _MARGIN + 30)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{_MARGIN}" y="{_MARGIN - 28}" font-size="15" '
        f'font-weight="bold">{escape(chart.title)}</text>',
        _legend_text(chart, _MARGIN, _MARGIN - 10),
    ]
    color_of = _color_map(chart)
    parts.extend(_time_view(chart, rows, row_heights, _MARGIN, _MARGIN,
                            color_of))
    power_y = _MARGIN + time_view_h + _GAP_BETWEEN_VIEWS
    parts.extend(_power_view(chart, _MARGIN, power_y, time_w, peak,
                             color_of))
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(chart: GanttChart, path: str) -> str:
    """Render and write to ``path``; returns the path."""
    document = render_svg(chart)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path


# ----------------------------------------------------------------------
# pieces
# ----------------------------------------------------------------------

def _legend_text(chart: GanttChart, x: int, y: int) -> str:
    ann = chart.annotations()
    text = (f"P_max={ann['P_max']:g}W  P_min={ann['P_min']:g}W  "
            f"tau={ann['tau']}s  E={ann['energy']:.1f}J  "
            f"Ec={ann['energy_cost']:.1f}J  spikes={ann['spikes']}  "
            f"gaps={ann['gaps']}")
    return f'<text x="{x}" y="{y}" fill="#444">{escape(text)}</text>'


def _color_map(chart: GanttChart) -> "dict[str, str]":
    colors = {}
    index = 0
    for bins in chart.rows.values():
        for item in bins:
            if item.task not in colors:
                colors[item.task] = _PALETTE[index % len(_PALETTE)]
                index += 1
    return colors


def _time_view(chart, rows, row_heights, x0, y0, color_of):
    parts = [f'<g id="time-view">']
    y = y0
    for (resource, bins), row_h in zip(rows, row_heights):
        base = y + row_h
        parts.append(
            f'<text x="{x0 - 44}" y="{base - 6}" fill="#222">'
            f'{escape(resource)}</text>')
        parts.append(
            f'<line x1="{x0}" y1="{base}" '
            f'x2="{x0 + chart.horizon * _PX_PER_SECOND}" y2="{base}" '
            f'stroke="#999"/>')
        for item in bins:
            bx = x0 + item.start * _PX_PER_SECOND
            bw = max(item.duration * _PX_PER_SECOND - 1, 2)
            bh = max(int(item.power * _PX_PER_WATT), 6)
            parts.append(
                f'<rect x="{bx}" y="{base - bh}" width="{bw}" '
                f'height="{bh}" fill="{color_of[item.task]}" '
                f'stroke="#333" stroke-width="0.6">'
                f'<title>{escape(item.task)}: start={item.start}s '
                f'd={item.duration}s p={item.power:g}W '
                f'slack={item.slack}</title></rect>')
            parts.append(
                f'<text x="{bx + 2}" y="{base - bh + 11}" '
                f'fill="white" font-size="10">'
                f'{escape(item.task[:8])}</text>')
        y += row_h + 6
    parts.append("</g>")
    return parts


def _power_view(chart, x0, y0, time_w, peak, color_of):
    height = _POWER_VIEW_H
    scale = height / max(peak * 1.15, 1e-9)

    def py(watts: float) -> float:
        return y0 + height - watts * scale

    parts = [f'<g id="power-view">']
    parts.append(
        f'<line x1="{x0}" y1="{y0 + height}" x2="{x0 + time_w}" '
        f'y2="{y0 + height}" stroke="#333"/>')
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y0 + height}" '
        f'stroke="#333"/>')

    # stacked composition per segment
    for t0, t1, _level in chart.profile.segments:
        seg_x = x0 + t0 * _PX_PER_SECOND
        seg_w = (t1 - t0) * _PX_PER_SECOND
        stack_y = y0 + height
        for name, watts in chart.composition_at(t0):
            h = watts * scale
            fill = "#bbb" if name == "(baseline)" \
                else color_of.get(name, "#888")
            parts.append(
                f'<rect x="{seg_x}" y="{stack_y - h:.2f}" '
                f'width="{seg_w}" height="{h:.2f}" fill="{fill}" '
                f'stroke="white" stroke-width="0.4" opacity="0.9">'
                f'<title>{escape(name)}: {watts:g}W @ '
                f'[{t0},{t1})s</title></rect>')
            stack_y -= h

    # constraint levels
    for level, color, label in ((chart.p_max, "#d62728", "P_max"),
                                (chart.p_min, "#1f77b4", "P_min")):
        yy = py(level)
        parts.append(
            f'<line x1="{x0}" y1="{yy:.2f}" x2="{x0 + time_w}" '
            f'y2="{yy:.2f}" stroke="{color}" stroke-dasharray="6,3"/>')
        parts.append(
            f'<text x="{x0 + time_w + 4}" y="{yy + 4:.2f}" '
            f'fill="{color}">{label}={level:g}W</text>')

    # spike / gap shading
    for spike in chart.spikes():
        sx = x0 + spike.start * _PX_PER_SECOND
        sw = spike.length * _PX_PER_SECOND
        parts.append(
            f'<rect x="{sx}" y="{py(spike.extremum):.2f}" width="{sw}" '
            f'height="{py(chart.p_max) - py(spike.extremum):.2f}" '
            f'fill="#d62728" opacity="0.35">'
            f'<title>spike {spike!r}</title></rect>')
    for gap in chart.gaps():
        gx = x0 + gap.start * _PX_PER_SECOND
        gw = gap.length * _PX_PER_SECOND
        parts.append(
            f'<rect x="{gx}" y="{py(chart.p_min):.2f}" width="{gw}" '
            f'height="{py(gap.extremum) - py(chart.p_min):.2f}" '
            f'fill="#1f77b4" opacity="0.25">'
            f'<title>gap {gap!r}</title></rect>')

    # y-axis labels
    step = max(int(peak / 5) or 1, 1)
    level = 0
    while level <= peak * 1.1:
        parts.append(
            f'<text x="{x0 - 30}" y="{py(level) + 4:.2f}" '
            f'fill="#555">{level}W</text>')
        level += step
    parts.append("</g>")
    return parts
