"""ASCII renderer for power-aware Gantt charts.

Renders both views of a :class:`~repro.gantt.model.GanttChart` as plain
text, suitable for terminals, logs, and EXPERIMENTS.md.  Example output
(the paper's Fig. 2 analogue)::

    == fig1-example ==  P_max=16  P_min=14  tau=20
    -- time view --
    A    |aaaaa....ccccc       |
    B    |bbbbbbbbbb  hhhh     |
    C    |  dddd  ffff  iii    |
    -- power view (1 col = 1 s, 1 row = 2 W) --
    18 |    ##        | ^ spike
    16 |----##--------| P_max
    ...

The time view shows one row per resource, one column per ``time_scale``
seconds; bins are drawn with the first letter of the task name, and
``.`` marks slack beyond each bin.  The power view is a column chart of
the profile with the two constraint levels drawn as rules.
"""

from __future__ import annotations

from .model import GanttChart

__all__ = ["render_chart", "render_time_view", "render_power_view"]


def render_chart(chart: GanttChart, time_scale: int = 1,
                 power_scale: float = 2.0, show_slack: bool = False) -> str:
    """Both views plus the annotation header, as one string."""
    ann = chart.annotations()
    header = (f"== {chart.title} ==  P_max={ann['P_max']:g}W  "
              f"P_min={ann['P_min']:g}W  tau={ann['tau']}s  "
              f"Ec={ann['energy_cost']:.1f}J  "
              f"spikes={ann['spikes']} gaps={ann['gaps']}")
    parts = [header,
             "-- time view --",
             render_time_view(chart, time_scale=time_scale,
                              show_slack=show_slack),
             f"-- power view (1 col = {time_scale}s, "
             f"1 row = {power_scale:g}W) --",
             render_power_view(chart, time_scale=time_scale,
                               power_scale=power_scale)]
    return "\n".join(parts)


def render_time_view(chart: GanttChart, time_scale: int = 1,
                     show_slack: bool = False) -> str:
    """One row per resource; bins drawn with task-name initials."""
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    width = _cols(chart.horizon, time_scale)
    label_width = max((len(r) for r in chart.rows), default=4) + 1
    lines = []
    for resource, bins in chart.rows.items():
        cells = [" "] * width
        for item in bins:
            mark = item.task[0]
            for t in range(item.start, item.end):
                col = t // time_scale
                if col < width:
                    cells[col] = mark
            if show_slack and item.slack > 0:
                slack_end = min(item.end + item.slack, chart.horizon)
                for t in range(item.end, slack_end):
                    col = t // time_scale
                    if col < width and cells[col] == " ":
                        cells[col] = "."
        lines.append(f"{resource:<{label_width}}|" + "".join(cells) + "|")
    return "\n".join(lines)


def render_power_view(chart: GanttChart, time_scale: int = 1,
                      power_scale: float = 2.0) -> str:
    """Column chart of the profile with P_max/P_min rules."""
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    if power_scale <= 0:
        raise ValueError(f"power_scale must be positive, got {power_scale}")
    width = _cols(chart.horizon, time_scale)
    profile = chart.profile
    top = max(profile.peak(), chart.p_max) + power_scale
    n_rows = int(top / power_scale) + 1
    columns = []
    for col in range(width):
        t = col * time_scale
        columns.append(profile.value(t))

    max_rule = round(chart.p_max / power_scale)
    min_rule = round(chart.p_min / power_scale)
    lines = []
    for row in range(n_rows, 0, -1):
        level = row * power_scale
        cells = []
        for value in columns:
            if value >= level - 1e-9:
                cells.append("#")
            elif row == max_rule:
                cells.append("-")
            elif row == min_rule:
                cells.append("~")
            else:
                cells.append(" ")
        suffix = ""
        if row == max_rule:
            suffix = " P_max"
        elif row == min_rule:
            suffix = " P_min"
        lines.append(f"{level:5.1f} |" + "".join(cells) + "|" + suffix)
    axis = "      +" + "-" * width + "+"
    ticks = _time_ticks(width, time_scale)
    return "\n".join(lines + [axis, ticks])


def _cols(horizon: int, time_scale: int) -> int:
    return max(1, (horizon + time_scale - 1) // time_scale)


def _time_ticks(width: int, time_scale: int) -> str:
    """A sparse time-axis label line (a tick every ~10 columns)."""
    cells = [" "] * width
    step = max(1, width // 8)
    line = [" "] * (width + 8)
    for col in range(0, width, step):
        label = str(col * time_scale)
        for i, ch in enumerate(label):
            if col + i < len(line):
                line[col + i] = ch
    del cells
    return "       " + "".join(line).rstrip()
