"""Command-line interface: ``repro-schedule``.

Subcommands:

* ``solve FILE`` — schedule a problem from a ``.json`` or ``.txt``
  (DSL) file; prints the per-stage metrics and the ASCII power-aware
  Gantt chart, optionally writes SVG / schedule JSON.
* ``rover [--case ...]`` — reproduce the Mars-rover schedules
  (Figs. 9-11 / Table 3 rows).
* ``mission [--steps N]`` — run the Table 4 mission comparison.
* ``example`` — walk the paper's nine-task example through the three
  stages (Figs. 2, 5, 7).
* ``sweep FILE`` — batch-solve a (P_max, P_min) sweep, optionally
  across worker processes, with ``--trace`` / ``--instrument`` run
  traces and ``--reuse-schedules`` / ``--store`` validity-range
  schedule reuse (Section 5.3); ``--backend shards|remote`` fans the
  grid out over worker subprocesses or running solve servers.
* ``shard plan|run|merge`` — the sharded-sweep workflow piecewise:
  partition a grid into ``repro-shard-manifest`` files, execute one
  manifest into a self-contained ``repro-shard-artifact``, and fold
  artifacts back into one merged result table / trace / store
  (``docs/sharding.md``).
* ``table show|export PATH`` — inspect a saved schedule store:
  Fig.-7-style validity-range lines, or JSON/CSV conversion.
* ``trace summarize|export PATH`` — digest or convert a saved
  ``repro-trace`` document (Chrome trace-event for Perfetto,
  Prometheus text, JSON Lines).
* ``serve`` — run the async solve server (``docs/serving.md``):
  JSON-over-HTTP solve/sweep endpoints, micro-batching, NDJSON event
  streams, Prometheus ``/metrics``, structured JSONL access logs
  (``--log-file``) and the flight-recorder debug endpoints
  (``docs/observability.md``).
* ``store-serve`` — run the shared schedule-store service
  (``docs/scaling.md``): one authoritative validity-range store that
  N ``serve --store-url`` instances probe and merge into over the
  ``repro-store-request`` v1 protocol.
* ``router`` — run the front-door router over N running solve
  servers (``docs/scaling.md``): balanced solve/sweep/session-open
  dispatch with retry-and-reassignment, sticky ``m{i}-``-prefixed
  job/session routing, health-gated membership.
* ``submit FILE`` — send a problem to a running solve server and
  print the solved points (synchronous single solve, or an
  asynchronous sweep with a live event tail).
* ``session SCRIPT`` — replay a recorded mission arrival script
  (``repro-session-script`` v1, ``docs/online.md``) through the
  online session engine, in-process by default or against a running
  server's ``POST /v1/sessions`` with ``--server``; prints the
  admit/reject/commit/replan event journal.
* ``top`` — live single-screen view of a running solve server:
  queue depth, batch sizes, cache/store hit rates, per-endpoint
  p50/p99 latencies and the most recent/notable requests, polled
  from ``/metrics`` and ``/v1/debug/requests``.

All output is plain text so the tool works over a serial console —
fitting, for a Mars rover scheduler.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__
from .analysis.report import format_table
from .errors import ReproError
from .gantt import chart_result, render_chart, write_svg
from .io import load_problem, load_problem_dsl, save_schedule
from .scheduling import PowerAwareScheduler, SchedulerOptions

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-schedule",
        description="Power-aware scheduling under timing constraints "
                    "(DAC 2001 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser(
        "solve", help="schedule a problem file (.json or DSL .txt)")
    solve.add_argument("file", help="problem file path")
    solve.add_argument("--svg", metavar="PATH",
                       help="write the power-aware Gantt chart as SVG")
    solve.add_argument("--out", metavar="PATH",
                       help="write the schedule as JSON")
    solve.add_argument("--seed", type=int, default=2001,
                       help="heuristic seed (default 2001)")
    solve.add_argument("--no-chart", action="store_true",
                       help="skip the ASCII chart")
    solve.add_argument("--dvfs", action="store_true",
                       help="attach a DVFS frequency ladder to every "
                            "task and let the scheduler slow tasks "
                            "(cubic power drop, 1/f stretch) when "
                            "delaying would break timing")
    solve.add_argument("--freq-levels", default="", metavar="F[,F...]",
                       help="comma-separated frequency rungs in (0, 1] "
                            "for --dvfs (must include 1.0; default "
                            "1.0,0.75,0.5,0.25); ignored for problem "
                            "files that already carry operating points")

    rover = sub.add_parser(
        "rover", help="reproduce the Mars rover schedules (Table 3)")
    rover.add_argument("--case", choices=["best", "typical", "worst",
                                          "all"],
                       default="all", help="solar case (default all)")
    rover.add_argument("--svg-dir", metavar="DIR",
                       help="write Figs. 9-11 style SVGs into DIR")

    mission = sub.add_parser(
        "mission", help="run the Table 4 mission comparison")
    mission.add_argument("--steps", type=int, default=48,
                         help="mission distance in steps (default 48)")

    sub.add_parser(
        "example",
        help="walk the paper's 9-task example through Figs. 2/5/7")

    diagnose = sub.add_parser(
        "diagnose",
        help="explain why a problem's timing constraints contradict")
    diagnose.add_argument("file", help="problem file path")

    sweep = sub.add_parser(
        "sweep", help="solve a problem across a P_max budget sweep")
    sweep.add_argument("file", help="problem file path")
    sweep.add_argument("--budgets", default="",
                       help="comma-separated P_max values "
                            "(default: 8 points around the problem's)")
    sweep.add_argument("--levels", default="",
                       help="comma-separated P_min values; with "
                            "--budgets this sweeps the full grid "
                            "(levels are clamped to each budget)")
    sweep.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="solve sweep points across N worker "
                            "processes (0 = in-process serial)")
    sweep.add_argument("--trace", metavar="PATH",
                       help="write a JSON run trace (per-stage solver "
                            "timings, cache hit/miss counters); "
                            "missing parent directories are created, "
                            "an existing file is refused without "
                            "--force")
    sweep.add_argument("--force", action="store_true",
                       help="overwrite an existing --trace file")
    sweep.add_argument("--instrument", action="store_true",
                       help="record hierarchical spans + metrics into "
                            "the run trace (schema v2)")
    sweep.add_argument("--reuse-schedules", action="store_true",
                       help="serve grid points from the validity-range "
                            "schedule store instead of re-solving "
                            "(Section 5.3: a schedule covers every "
                            "P_max >= its peak, P_min <= its floor)")
    sweep.add_argument("--reuse-policy",
                       choices=["identical", "valid"],
                       default="identical",
                       help="'identical' serves only entries that "
                            "reproduce a fresh solve bit-for-bit "
                            "(default); 'valid' serves any covering "
                            "entry, Fig. 7 style")
    sweep.add_argument("--store", metavar="PATH",
                       help="schedule-store JSON: loaded before the "
                            "sweep when it exists, written back after "
                            "(implies --reuse-schedules)")
    sweep.add_argument("--backend",
                       choices=["local", "shards", "remote"],
                       default="local",
                       help="where grid points solve: in this process "
                            "or a pool (local, default), across N "
                            "'shard run' subprocesses (shards), or on "
                            "running solve servers (remote, needs "
                            "--servers)")
    sweep.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count for --backend shards/remote "
                            "(default: 2, or one per --servers URL)")
    sweep.add_argument("--shard-strategy",
                       choices=["tile", "round_robin"], default="tile",
                       help="grid partition: contiguous power-plane "
                            "tiles maximizing in-shard schedule reuse "
                            "(default) or round-robin dealing")
    sweep.add_argument("--servers", default="", metavar="URL[,URL...]",
                       help="comma-separated solve-server base URLs "
                            "for --backend remote")
    sweep.add_argument("--lp-log-factor", type=int, default=None,
                       metavar="K",
                       help="override the constraint graph's add-log "
                            "trim bound multiplier for every job "
                            "(watch lp_cache_log_evictions in the "
                            "trace to see when the window is too "
                            "small)")
    sweep.add_argument("--kernel", choices=["auto", "oracle", "numpy"],
                       default="auto",
                       help="solver core: numpy fast path when "
                            "available (auto, default), forced numpy, "
                            "or the pure-Python reference oracle — "
                            "certified bit-identical, a speed knob "
                            "only")
    sweep.add_argument("--no-warm-start", action="store_true",
                       help="disable warm-started longest-path "
                            "re-solves across rollbacks, graph copies, "
                            "and neighbouring sweep points (on by "
                            "default; exact either way)")
    sweep.add_argument("--freq-levels", default="", metavar="F[,F...]",
                       help="comma-separated DVFS frequency rungs in "
                            "(0, 1], must include 1.0: every task gets "
                            "the ladder and each grid point solves "
                            "with deadline-safe min-energy frequency "
                            "selection (such points bypass the "
                            "schedule store — see DESIGN.md 5f)")

    shard = sub.add_parser(
        "shard",
        help="plan, execute, and merge sharded sweeps "
             "(docs/sharding.md)")
    shard_sub = shard.add_subparsers(dest="shard_command",
                                     required=True)
    shard_plan = shard_sub.add_parser(
        "plan", help="partition a (P_max, P_min) grid into shard "
                     "manifest files")
    shard_plan.add_argument("file", help="problem file path")
    shard_plan.add_argument("--budgets", required=True,
                            help="comma-separated P_max values")
    shard_plan.add_argument("--levels", default="",
                            help="comma-separated P_min values "
                                 "(default: the problem's own P_min)")
    shard_plan.add_argument("--shards", type=int, default=2,
                            metavar="N",
                            help="number of shards (default 2)")
    shard_plan.add_argument("--strategy",
                            choices=["tile", "round_robin"],
                            default="tile",
                            help="partition strategy (default tile)")
    shard_plan.add_argument("--out-dir", required=True, metavar="DIR",
                            help="directory for shard_<i>.json "
                                 "manifests")
    shard_plan.add_argument("--seed", type=int, default=None,
                            help="heuristic seed baked into every "
                                 "planned job")
    shard_plan.add_argument("--reuse-schedules", action="store_true",
                            help="shard workers run with a "
                                 "validity-range schedule store")
    shard_plan.add_argument("--reuse-policy",
                            choices=["identical", "valid"],
                            default="identical",
                            help="store policy for the shard workers")
    shard_plan.add_argument("--instrument", action="store_true",
                            help="shard workers record spans + "
                                 "metrics into their artifacts")
    shard_plan.add_argument("--lp-log-factor", type=int, default=None,
                            metavar="K",
                            help="add-log trim bound override for the "
                                 "shard workers")
    shard_plan.add_argument("--kernel",
                            choices=["auto", "oracle", "numpy"],
                            default="auto",
                            help="solver core for the shard workers "
                                 "(default auto)")
    shard_plan.add_argument("--no-warm-start", action="store_true",
                            help="shard workers solve cold (disable "
                                 "warm-started re-solves)")
    shard_plan.add_argument("--freq-levels", default="",
                            metavar="F[,F...]",
                            help="comma-separated DVFS frequency rungs "
                                 "attached to every planned job's "
                                 "tasks (must include 1.0)")
    shard_run = shard_sub.add_parser(
        "run", help="execute one shard manifest into an artifact")
    shard_run.add_argument("manifest", help="shard manifest JSON file")
    shard_run.add_argument("--artifact", required=True, metavar="PATH",
                           help="where to write the "
                                "repro-shard-artifact JSON")
    shard_merge = shard_sub.add_parser(
        "merge", help="fold shard artifacts into one merged run")
    shard_merge.add_argument("artifacts", nargs="+",
                             help="shard artifact JSON files")
    shard_merge.add_argument("--reuse-policy",
                             choices=["identical", "valid"],
                             default="identical",
                             help="policy of the merged store")
    shard_merge.add_argument("--trace", metavar="PATH",
                             help="write the merged repro-trace v2 "
                                  "document")
    shard_merge.add_argument("--store", metavar="PATH",
                             help="write the merged schedule store")

    table = sub.add_parser(
        "table",
        help="inspect or convert a saved schedule-store document")
    table_sub = table.add_subparsers(dest="table_command", required=True)
    table_show = table_sub.add_parser(
        "show", help="print every stored schedule's validity range, "
                     "Fig.-7 style")
    table_show.add_argument("path", help="schedule-store JSON file")
    table_export = table_sub.add_parser(
        "export", help="convert a schedule store for external tooling")
    table_export.add_argument("path", help="schedule-store JSON file")
    table_export.add_argument("--format", default="json",
                              choices=["json", "csv"],
                              help="normalized JSON (default) or a "
                                   "flat CSV of entries")
    table_export.add_argument("--out", metavar="PATH",
                              help="output file (default: stdout)")

    trace = sub.add_parser(
        "trace", help="inspect or convert a saved repro-trace document")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="digest a trace: slowest jobs/stages, cache "
                          "effectiveness, histograms")
    summarize.add_argument("path", help="trace JSON file (v1 or v2)")
    summarize.add_argument("--top", type=int, default=5,
                           help="rows per ranking table (default 5)")
    export = trace_sub.add_parser(
        "export", help="convert a trace for external tooling")
    export.add_argument("path", help="trace JSON file (v1 or v2)")
    export.add_argument("--format", required=True,
                        choices=["chrome", "prom", "jsonl"],
                        help="chrome trace-event JSON (Perfetto), "
                             "Prometheus text, or JSON Lines")
    export.add_argument("--out", metavar="PATH",
                        help="output file (default: stdout)")

    serve = sub.add_parser(
        "serve", help="run the async solve server (docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="port (default 8080; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="engine worker processes per batch "
                            "(0 = solve in the server process)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="most solve jobs per engine batch "
                            "(default 16)")
    serve.add_argument("--max-wait-ms", type=float, default=10.0,
                       help="micro-batch coalescing window in ms "
                            "(default 10)")
    serve.add_argument("--queue-limit", type=int, default=256,
                       help="bound on queued jobs before 429 "
                            "backpressure (default 256)")
    serve.add_argument("--reuse-schedules", action="store_true",
                       help="serve covered points from the "
                            "validity-range schedule store "
                            "(Section 5.3)")
    serve.add_argument("--reuse-policy",
                       choices=["identical", "valid"],
                       default="identical",
                       help="store policy (see sweep --reuse-policy)")
    serve.add_argument("--store", metavar="PATH",
                       help="schedule-store JSON: loaded at startup "
                            "when it exists, written back on "
                            "shutdown (implies --reuse-schedules)")
    serve.add_argument("--store-url", metavar="URL",
                       help="base URL of a shared schedule-store "
                            "service (repro-schedule store-serve); "
                            "implies --reuse-schedules and shares "
                            "validity-range hits across every "
                            "instance pointed at it "
                            "(docs/scaling.md)")
    serve.add_argument("--session-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="close and evict mission sessions idle "
                            "for this many seconds (default: keep "
                            "until SESSION_RETENTION pressure)")
    serve.add_argument("--trace", metavar="PATH",
                       help="write the repro-serve-trace JSON "
                            "document (metrics + job summaries) on "
                            "shutdown")
    serve.add_argument("--log-file", metavar="PATH",
                       help="append structured JSONL events (access "
                            "log, retries, store merges) here; the "
                            "REPRO_LOG env var does the same "
                            "process-wide")
    serve.add_argument("--flight-recorder", type=int, default=64,
                       metavar="K",
                       help="request records retained by "
                            "/v1/debug/requests (default 64)")
    serve.add_argument("--slow-ms", type=float, default=1000.0,
                       help="latency past which a request is pinned "
                            "in the notable ring (default 1000)")

    store_serve = sub.add_parser(
        "store-serve",
        help="run the shared schedule-store service "
             "(docs/scaling.md)")
    store_serve.add_argument("--host", default="127.0.0.1",
                             help="bind address (default 127.0.0.1)")
    store_serve.add_argument("--port", type=int, default=8090,
                             help="port (default 8090; "
                                  "0 = ephemeral)")
    store_serve.add_argument("--reuse-policy",
                             choices=["identical", "valid"],
                             default="identical",
                             help="probe policy; every serve "
                                  "instance sharing this store "
                                  "should match it")
    store_serve.add_argument("--store", metavar="PATH",
                             help="schedule-store JSON: loaded at "
                                  "startup when it exists, written "
                                  "back on shutdown")
    store_serve.add_argument("--log-file", metavar="PATH",
                             help="append structured JSONL events "
                                  "(access log, merges) here")

    router = sub.add_parser(
        "router",
        help="run the front-door router over running solve servers "
             "(docs/scaling.md)")
    router.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    router.add_argument("--port", type=int, default=8081,
                        help="port (default 8081; 0 = ephemeral)")
    router.add_argument("--members", required=True,
                        metavar="URL[,URL...]",
                        help="comma-separated base URLs of the serve "
                             "instances behind this router")
    router.add_argument("--retries", type=int, default=2,
                        help="reassignment budget per balanced "
                             "request (default 2)")
    router.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for a member "
                             "connection + response head "
                             "(default 60)")
    router.add_argument("--health-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="seconds between background /healthz "
                             "probes per member (default 1)")
    router.add_argument("--fail-threshold", type=int, default=3,
                        help="consecutive failures before a member "
                             "is benched (default 3)")
    router.add_argument("--log-file", metavar="PATH",
                        help="append structured JSONL events "
                             "(access log, retries, membership "
                             "changes) here")

    top = sub.add_parser(
        "top",
        help="live view of a running solve server "
             "(/metrics + /v1/debug/requests)")
    top.add_argument("--server", default="http://127.0.0.1:8080",
                     help="server base URL "
                          "(default http://127.0.0.1:8080)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds (default 2)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen "
                          "clearing; scripting-friendly)")

    submit = sub.add_parser(
        "submit",
        help="send a problem to a running solve server")
    submit.add_argument("file", help="problem file path (.json/.txt)")
    submit.add_argument("--server", default="http://127.0.0.1:8080",
                        help="server base URL "
                             "(default http://127.0.0.1:8080)")
    submit.add_argument("--budgets", default="",
                        help="comma-separated P_max values; with "
                             "--levels, sweeps the grid "
                             "asynchronously via /v1/sweep")
    submit.add_argument("--levels", default="",
                        help="comma-separated P_min values")
    submit.add_argument("--seed", type=int, default=None,
                        help="heuristic seed forwarded to the server")
    submit.add_argument("--deadline-ms", type=int, default=None,
                        help="per-request deadline; past it the "
                             "server answers 504 deadline_exceeded")
    submit.add_argument("--events", action="store_true",
                        help="print the NDJSON event stream while a "
                             "sweep runs")
    submit.add_argument("--check", action="store_true",
                        help="exit 1 unless at least one point is "
                             "feasible and every feasible point is "
                             "power-valid (peak <= P_max)")
    submit.add_argument("--freq-levels", default="",
                        metavar="F[,F...]",
                        help="DVFS frequency ladder the server "
                             "attaches before solving (bumps the "
                             "request to version 2; older servers "
                             "answer unsupported_version)")

    session = sub.add_parser(
        "session",
        help="replay a recorded mission arrival script "
             "(repro-session-script v1), locally or against a "
             "running solve server")
    session.add_argument("file",
                        help="session script path (.json)")
    session.add_argument("--server", default=None, metavar="URL",
                        help="replay through POST /v1/sessions on a "
                             "running server instead of in-process")
    session.add_argument("--out", metavar="PATH",
                        help="write the full event journal as JSON")
    session.add_argument("--quiet", action="store_true",
                        help="suppress the per-event lines")
    session.add_argument("--check", action="store_true",
                        help="exit 1 unless the replay ends cleanly "
                             "with every admitted task scheduled, "
                             "and (local replay) the final schedule "
                             "passes the timing and power validators")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """Entry point; returns the process exit code."""
    from .obs import maybe_enable_from_env
    maybe_enable_from_env()
    args = build_parser().parse_args(argv)
    try:
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "rover":
            return _cmd_rover(args)
        if args.command == "mission":
            return _cmd_mission(args)
        if args.command == "diagnose":
            return _cmd_diagnose(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "shard":
            return _cmd_shard(args)
        if args.command == "table":
            return _cmd_table(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "store-serve":
            return _cmd_store_serve(args)
        if args.command == "router":
            return _cmd_router(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "session":
            return _cmd_session(args)
        return _cmd_example()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _load(path: str):
    if path.endswith(".json"):
        return load_problem(path)
    return load_problem_dsl(path)


def _parse_freq_levels(raw: str) -> "tuple[float, ...]":
    """Parse a ``--freq-levels`` comma list (empty string -> ())."""
    if not raw:
        return ()
    try:
        return tuple(float(token) for token in raw.split(","))
    except ValueError as exc:
        raise ReproError(
            f"--freq-levels must be comma-separated numbers: "
            f"{exc}") from exc


def _cmd_diagnose(args) -> int:
    from .core.diagnose import explain_infeasibility
    problem = _load(args.file)
    explanation = explain_infeasibility(problem.graph)
    if explanation is None:
        print(f"{problem.name}: timing constraints are consistent")
        reasons = problem.feasible_power_check()
        for reason in reasons:
            print(f"  power warning: {reason}")
        return 0 if not reasons else 1
    print(explanation.render())
    return 1


def _cmd_sweep(args) -> int:
    from .analysis import knee_point, sweep_grid, sweep_p_max
    from .engine import BatchRunner, RunnerConfig, ScheduleStore
    problem = _load(args.file)
    freq_levels = _parse_freq_levels(args.freq_levels)
    if freq_levels:
        from .core.dvfs import attach_ladder
        problem = attach_ladder(problem, freq_levels)
    if args.trace and os.path.exists(args.trace) and not args.force:
        raise ReproError(
            f"trace file {args.trace!r} already exists; "
            "pass --force to overwrite it")
    if args.budgets:
        budgets = [float(token) for token in args.budgets.split(",")]
    else:
        base = problem.p_max
        budgets = [round(base * factor, 2)
                   for factor in (0.6, 0.75, 0.9, 1.0, 1.2, 1.5, 2.0,
                                  3.0)]
    reuse = args.reuse_schedules or bool(args.store)
    store = None
    if args.store and os.path.exists(args.store):
        store = ScheduleStore.read(args.store,
                                   policy=args.reuse_policy)
    backend = None
    if args.backend == "shards":
        from .engine.backends import SubprocessShardBackend
        backend = SubprocessShardBackend(
            shards=args.shards if args.shards else 2,
            strategy=args.shard_strategy)
    elif args.backend == "remote":
        from .engine.backends import RemoteBackend
        servers = [token.strip() for token in args.servers.split(",")
                   if token.strip()]
        if not servers:
            raise ReproError("--backend remote requires "
                             "--servers URL[,URL...]")
        backend = RemoteBackend(servers, shards=args.shards,
                                strategy=args.shard_strategy)
    runner = BatchRunner(RunnerConfig(workers=max(0, args.parallel),
                                      trace_path=args.trace,
                                      instrument=args.instrument,
                                      reuse_schedules=reuse,
                                      reuse_policy=args.reuse_policy,
                                      lp_log_factor=args.lp_log_factor,
                                      core_kernel=args.kernel,
                                      warm_start=not args.no_warm_start),
                         store=store, backend=backend)
    if args.levels:
        levels = [float(token) for token in args.levels.split(",")]
        points = sweep_grid(problem, budgets, levels, runner=runner)
        title = f"== {problem.name}: (P_max, P_min) grid sweep =="
    else:
        points = sweep_p_max(problem, budgets, runner=runner)
        title = f"== {problem.name}: P_max sweep =="
    print(format_table([p.row() for p in points], title=title))
    knee = knee_point(points)
    if knee is not None:
        print(f"knee: P_max = {knee.p_max:g} W reaches "
              f"tau = {knee.finish_time} s")
    trace = runner.last_trace
    if trace is not None:
        run, cache = trace.run, trace.cache
        print(f"engine: {run['jobs']} points, "
              f"{run['unique_solved']} solved "
              f"({cache.get('hits', 0)} cache hits), "
              f"mode={run['mode']}, {run['elapsed_s']:.2f}s")
        if trace.reuse is not None:
            r = trace.reuse
            print(f"reuse[{r['policy']}]: {r['range_hits']} range "
                  f"hits, {r['solved']} solved, "
                  f"{r['entries']} stored schedules")
    if args.trace:
        print(f"wrote {args.trace}")
    if args.store and runner.store is not None:
        runner.store.write(args.store)
        print(f"wrote {args.store}")
    return 0


def _cmd_shard(args) -> int:
    if args.shard_command == "plan":
        return _cmd_shard_plan(args)
    if args.shard_command == "run":
        return _cmd_shard_run(args)
    return _cmd_shard_merge(args)


def _cmd_shard_plan(args) -> int:
    from .engine.planner import SweepSpec, plan_shards
    from .io.shards import save_manifest
    problem = _load(args.file)
    budgets = [float(token) for token in args.budgets.split(",")]
    levels = ([float(token) for token in args.levels.split(",")]
              if args.levels else [problem.p_min])
    options = (SchedulerOptions(seed=args.seed)
               if args.seed is not None else None)
    spec = SweepSpec.grid(problem, budgets, levels, options=options,
                          name=problem.name,
                          freq_levels=_parse_freq_levels(
                              args.freq_levels))
    jobs = spec.jobs()
    runner_doc = {"retries": 1,
                  "reuse_schedules": args.reuse_schedules,
                  "reuse_policy": args.reuse_policy,
                  "instrument": args.instrument,
                  "lp_log_factor": args.lp_log_factor,
                  "core_kernel": args.kernel,
                  "warm_start": not args.no_warm_start}
    plan = plan_shards(jobs, max(1, args.shards), args.strategy,
                       sweep=problem.name, runner=runner_doc)
    os.makedirs(args.out_dir, exist_ok=True)
    for manifest in plan:
        path = os.path.join(args.out_dir,
                            f"shard_{manifest.index}.json")
        save_manifest(manifest, path)
        print(f"wrote {path} ({len(manifest)} jobs)")
    print(f"planned {len(jobs)} jobs "
          f"({len(budgets)}x{len(levels)} grid) into "
          f"{plan.shards} shards, strategy={plan.strategy}")
    return 0


def _cmd_shard_run(args) -> int:
    from .engine.backends.shards import run_manifest
    from .io.shards import load_manifest, save_artifact
    manifest = load_manifest(args.manifest)
    artifact = run_manifest(manifest)
    save_artifact(artifact, args.artifact)
    failed = sum(1 for result in artifact.results if not result.ok)
    print(f"shard {manifest.index + 1}/{manifest.of}: "
          f"{len(artifact.results)} jobs, {failed} failed, "
          f"{len(artifact.store_delta)} new store entries")
    print(f"wrote {args.artifact}")
    return 0


def _cmd_shard_merge(args) -> int:
    from .engine.merge import merge_artifacts
    from .io.shards import load_artifact
    artifacts = [load_artifact(path) for path in args.artifacts]
    merged = merge_artifacts(artifacts, policy=args.reuse_policy)
    rows = []
    failures = []
    for result in merged.results:
        if result.ok and result.value is not None \
                and hasattr(result.value, "row"):
            rows.append(result.value.row())
        elif not result.ok:
            failures.append(result)
    if rows:
        print(format_table(
            rows, title=f"== merged results "
                        f"({len(artifacts)} shards) =="))
    run = merged.trace.run
    print(f"merged: {run['jobs']} jobs from {run['shards']} shards, "
          f"{run['unique_solved']} solved, "
          f"{len(failures)} failed, {run['elapsed_s']:.2f}s slowest "
          f"shard")
    for result in failures:
        print(f"  position {result.position} failed: {result.error}",
              file=sys.stderr)
    if args.trace:
        merged.trace.write(args.trace)
        print(f"wrote {args.trace}")
    if args.store and merged.store is not None:
        merged.store.write(args.store)
        print(f"wrote {args.store}")
    return 0 if not failures else 1


def _cmd_table(args) -> int:
    from .engine import ScheduleStore
    store = ScheduleStore.read(args.path)
    if args.table_command == "show":
        lines = store.describe()
        if not lines:
            print("(empty schedule store)")
            return 0
        print(f"== schedule store: {len(store)} schedules, "
              f"policy={store.policy} ==")
        for line in lines:
            print(line)
        return 0
    # export
    if args.format == "json":
        import json
        text = json.dumps(store.to_dict(), indent=2, sort_keys=False)
    else:  # csv — one flat row per stored schedule
        import csv
        import io as _io
        buffer = _io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["base_key", "problem", "label", "stage",
                         "makespan_s", "min_p_max_W", "max_full_p_min_W",
                         "solved_p_max_W", "solved_p_min_W"])
        for base_key, bucket in sorted(store.problems.items()):
            for entry in bucket.entries:
                writer.writerow([
                    base_key, bucket.name, entry.label, entry.stage,
                    entry.makespan, entry.peak, entry.floor,
                    entry.solved_p_max, entry.solved_p_min])
        text = buffer.getvalue().rstrip("\n")
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    from .engine import read_trace
    from .obs import (chrome_trace, jsonl_lines, metrics_from_doc,
                      prometheus_text, spans_from_doc, summarize_trace)
    trace = read_trace(args.path)
    doc = trace.to_dict()
    if args.trace_command == "summarize":
        print(summarize_trace(doc, top=max(1, args.top)))
        return 0
    # export
    if args.format == "chrome":
        import json
        payload = chrome_trace(spans_from_doc(doc),
                               metrics_from_doc(doc))
        text = json.dumps(payload, indent=1, sort_keys=True)
    elif args.format == "prom":
        text = prometheus_text(metrics_from_doc(doc))
    else:  # jsonl
        text = "\n".join(jsonl_lines(spans_from_doc(doc),
                                     metrics_from_doc(doc)))
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


# ----------------------------------------------------------------------

def _cmd_solve(args) -> int:
    if args.file.endswith(".json"):
        problem = load_problem(args.file)
    else:
        problem = load_problem_dsl(args.file)
    if getattr(args, "dvfs", False) and not problem.has_operating_points:
        from .core.dvfs import DEFAULT_LADDER, attach_ladder
        freqs = _parse_freq_levels(args.freq_levels) or DEFAULT_LADDER
        problem = attach_ladder(problem, freqs)
    options = SchedulerOptions(seed=args.seed)
    from .core.diagnose import explain_infeasibility
    from .errors import PositiveCycleError
    try:
        pipeline = PowerAwareScheduler(options).solve_pipeline(problem)
    except PositiveCycleError:
        explanation = explain_infeasibility(problem.graph)
        if explanation is not None:
            print(explanation.render(), file=sys.stderr)
            return 1
        raise
    print(format_table(pipeline.stage_rows(),
                       title=f"== {problem.name} =="))
    result = pipeline.final
    dvfs = result.extra.get("dvfs")
    if dvfs:
        slowed = {name: point for name, point
                  in dvfs["assignment"].items()
                  if point["freq"] != 1.0 or point["cores"] != 1}
        chosen = ", ".join(
            f"{name}@f={point['freq']:g}x{point['cores']}"
            for name, point in sorted(slowed.items())) or "all full speed"
        print(f"dvfs: {chosen} "
              f"({dvfs['evaluations']} configurations tried, "
              f"E_ideal={dvfs['energy_ideal_J']:g} J, "
              f"E_rounded={dvfs['energy_rounded_J']:g} J)")
    if not args.no_chart:
        print()
        print(render_chart(chart_result(result)))
    if args.svg:
        write_svg(chart_result(result), args.svg)
        print(f"wrote {args.svg}")
    if args.out:
        save_schedule(result.schedule, args.out,
                      problem_name=problem.name)
        print(f"wrote {args.out}")
    return 0


def _cmd_rover(args) -> int:
    from .mission import MarsRover, SolarCase
    rover = MarsRover.standard()
    cases = list(SolarCase) if args.case == "all" \
        else [SolarCase(args.case)]
    rows = []
    for case in cases:
        jpl = rover.jpl_result(case)
        pa = rover.power_aware_result(case)
        rows.append({"case": case.value, "scheduler": "jpl",
                     **jpl.metrics.row()})
        rows.append({"case": case.value, "scheduler": "power-aware",
                     **pa.metrics.row()})
        if args.svg_dir:
            path = f"{args.svg_dir}/rover_{case.value}.svg"
            write_svg(chart_result(pa, title=f"rover {case.value}"),
                      path)
            print(f"wrote {path}")
    print(format_table(rows, title="== Mars rover (Table 3) =="))
    return 0


def _cmd_mission(args) -> int:
    from .mission import (JPLPolicy, MarsRover, MissionSimulator,
                          PowerAwarePolicy, compare_reports,
                          paper_mission_environment)
    rover = MarsRover.standard()
    jpl = MissionSimulator(paper_mission_environment(),
                           JPLPolicy(rover), args.steps).run()
    pa = MissionSimulator(paper_mission_environment(),
                          PowerAwarePolicy(rover), args.steps).run()
    rows = []
    for report in (jpl, pa):
        for phase in report.phases():
            rows.append({"policy": report.policy,
                         "solar_W": phase.solar,
                         "steps": phase.steps,
                         "time_s": phase.time,
                         "Ec_J": phase.energy_cost})
    print(format_table(rows, title="== Mission scenario (Table 4) =="))
    print(jpl.summary())
    print(pa.summary())
    comparison = compare_reports(jpl, pa)
    print(f"improvement: {comparison['time_improvement_pct']:.1f}% time, "
          f"{comparison['energy_improvement_pct']:.1f}% energy "
          f"(paper: 33.3% / 32.7%)")
    return 0


def _run_http_server(make_server, banner, trailers=()) -> int:
    """Shared serve/store-serve/router loop: start, print the
    listening banner (CI and the benchmarks parse it), run until
    SIGINT/SIGTERM, shut down gracefully."""
    import asyncio

    async def _run() -> None:
        server = make_server()
        await server.start()
        print(banner(server), flush=True)
        # Explicit handlers, not KeyboardInterrupt: a daemonized server
        # (shell `&`, CI step) inherits SIGINT as ignored, and SIGTERM
        # would otherwise kill the process without draining.
        import signal
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platforms without support
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait({serving, stopping},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (serving, stopping):
                task.cancel()
            print("draining...", flush=True)
            await server.shutdown()
            for path in trailers:
                if path:
                    print(f"wrote {path}")

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve(args) -> int:
    from .serving import ServingConfig, SolveServer

    config = ServingConfig(host=args.host, port=args.port,
                           max_batch=args.max_batch,
                           max_wait_ms=args.max_wait_ms,
                           queue_limit=args.queue_limit,
                           workers=max(0, args.workers),
                           reuse_schedules=args.reuse_schedules,
                           reuse_policy=args.reuse_policy,
                           store_path=args.store,
                           store_url=args.store_url,
                           session_ttl_s=args.session_ttl,
                           trace_path=args.trace,
                           flight_recorder=args.flight_recorder,
                           slow_ms=args.slow_ms,
                           log_path=args.log_file)
    return _run_http_server(
        lambda: SolveServer(config),
        lambda server: (f"repro solve server listening on "
                        f"http://{config.host}:{server.port}"),
        trailers=(config.store_path, config.trace_path))


def _cmd_store_serve(args) -> int:
    from .serving import StoreService, StoreServiceConfig

    config = StoreServiceConfig(host=args.host, port=args.port,
                                reuse_policy=args.reuse_policy,
                                store_path=args.store,
                                log_path=args.log_file)
    return _run_http_server(
        lambda: StoreService(config),
        lambda server: (f"repro store service listening on "
                        f"http://{config.host}:{server.port}"),
        trailers=(config.store_path,))


def _cmd_router(args) -> int:
    from .serving import Router, RouterConfig

    members = [token.strip() for token in args.members.split(",")
               if token.strip()]
    if not members:
        raise ReproError("--members needs at least one URL")
    config = RouterConfig(host=args.host, port=args.port,
                          members=members,
                          retries=max(0, args.retries),
                          timeout=args.timeout,
                          health_interval_s=args.health_interval,
                          fail_threshold=max(1, args.fail_threshold),
                          log_path=args.log_file)
    return _run_http_server(
        lambda: Router(config),
        lambda server: (f"repro router listening on "
                        f"http://{config.host}:{server.port} "
                        f"over {len(members)} member(s)"))


def _point_row(point: "dict") -> "dict[str, object]":
    utilization = point.get("utilization")
    return {
        "P_max_W": point["p_max"],
        "P_min_W": point["p_min"],
        "feasible": point["feasible"],
        "tau_s": point.get("finish_time"),
        "Ec_J": point.get("energy_cost"),
        "rho_pct": (None if utilization is None
                    else 100.0 * utilization),
        "peak_W": point.get("peak_power"),
        "served": ("cache" if point.get("cached")
                   else "store" if point.get("reused") else "solve"),
    }


def _cmd_submit(args) -> int:
    from .serving import ServingClient
    problem = _load(args.file)
    client = ServingClient(args.server)
    budgets = ([float(token) for token in args.budgets.split(",")]
               if args.budgets else None)
    levels = ([float(token) for token in args.levels.split(",")]
              if args.levels else None)
    freq_levels = list(_parse_freq_levels(args.freq_levels)) or None
    if budgets or levels:
        ack = client.sweep(problem, budgets=budgets, levels=levels,
                           seed=args.seed,
                           deadline_ms=args.deadline_ms,
                           freq_levels=freq_levels)
        job_id = ack["job"]
        print(f"job {job_id} accepted "
              f"({ack.get('points_total', '?')} points)")
        if args.events:
            for event in client.events(job_id):
                print(json.dumps(event))
            response = client.job(job_id)
        else:
            response = client.wait(job_id)
    else:
        response = client.solve(problem, seed=args.seed,
                                deadline_ms=args.deadline_ms,
                                freq_levels=freq_levels)
    points = response.get("points", [])
    title = f"== {problem.name}: served points =="
    print(format_table([_point_row(p) for p in points], title=title))
    print(f"job {response.get('job')}: {response.get('status')}, "
          f"{response.get('cached', 0)} cache hits, "
          f"{response.get('reused', 0)} store reuses, "
          f"{response.get('elapsed_ms', 0):.0f} ms server-side")
    if response.get("status") == "error":
        error = response.get("error") or {}
        print(f"job failed [{error.get('code', 'internal')}]: "
              f"{error.get('message', 'unknown error')}",
              file=sys.stderr)
        return 1
    if args.check:
        feasible = [p for p in points if p.get("feasible")]
        if not feasible:
            print("check: FAILED (no feasible point)",
                  file=sys.stderr)
            return 1
        for point in feasible:
            if point.get("peak_power") is not None \
                    and point["peak_power"] > point["p_max"] + 1e-9:
                print(f"check: FAILED (peak {point['peak_power']} W "
                      f"exceeds P_max {point['p_max']} W)",
                      file=sys.stderr)
                return 1
        print(f"check: ok ({len(feasible)} feasible, "
              "all power-valid)")
    return 0


def _cmd_session(args) -> int:
    """Replay a recorded arrival script, locally or via a server."""
    from .online import load_script, replay_script

    script = load_script(args.file)
    journal: "list[dict]" = []

    if args.server:
        from .serving import ServingClient
        client = ServingClient(args.server)
        ack = client.open_session(
            p_max=script.p_max, p_min=script.p_min,
            baseline=script.baseline, scheduler=script.scheduler,
            seed=script.seed, name=script.name)
        session_id = ack["session"]
        print(f"session {session_id} open on {args.server} "
              f"({script.scheduler}, P_max={script.p_max} W)")
        ended_ok = False
        for event in client.session_send(session_id,
                                         script.commands):
            journal.append(event)
            if event.get("event") == "end":
                ended_ok = bool(event.get("ok"))
            if not args.quiet:
                print(json.dumps(event))
        status = client.session(session_id)
        client.close_session(session_id)
        admitted = status.get("admitted", [])
        rejected = status.get("rejected", [])
        starts = status.get("starts", {})
        makespan = status.get("makespan")
        # The server streams events but runs no final validators;
        # re-run them client-side against the reported starts on the
        # problem the admitted arrivals imply.  Fault replays stretch
        # durations the nominal rebuild cannot see, so for fault
        # scripts --check only covers stream completion and coverage.
        has_faults = any(c.get("event") == "fault"
                         for c in script.commands)
        validated = bool(admitted) and not has_faults \
            and all(name in starts for name in admitted)
        if validated:
            from .core.schedule import Schedule
            from .core.validation import check_power_valid
            from .online import problem_from_script
            local = problem_from_script(script, admitted)
            plan = Schedule(local.graph,
                            {name: starts[name] for name in admitted})
            report_ok = check_power_valid(
                plan, local.p_max,
                baseline=local.total_baseline).ok
        else:
            # Nothing to validate (or faults make the nominal rebuild
            # inapplicable); the coverage checks below still run.
            report_ok = True
    else:
        session, events = replay_script(script)
        journal.extend(events)
        if not args.quiet:
            for event in events:
                print(json.dumps(event))
        # A local replay that raises never reaches here, so the
        # stream-level flag is trivially true.
        ended_ok = True
        admitted = session.admitted
        rejected = [name for name, _ in session.rejected]
        starts = (session.schedule.as_dict()
                  if session.schedule is not None else {})
        makespan = (session.schedule.makespan
                    if session.schedule is not None else None)
        report_ok = session.committed_report().ok if admitted \
            else True
        validated = True
    print(f"{script.name}: {len(admitted)} admitted, "
          f"{len(rejected)} rejected"
          + (f", makespan {makespan}" if makespan is not None
             else ""))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"format": "repro-session-event",
                       "version": 1, "script": args.file,
                       "events": journal}, handle, indent=1)
            handle.write("\n")
        print(f"wrote event journal to {args.out}")
    if args.check:
        missing = [name for name in admitted if name not in starts]
        if not ended_ok or missing or not report_ok:
            reason = ("stream ended with an error"
                      if not ended_ok else
                      f"admitted tasks missing from the schedule: "
                      f"{missing}" if missing else
                      "final schedule failed validation")
            print(f"check: FAILED ({reason})", file=sys.stderr)
            return 1
        if validated:
            print(f"check: ok ({len(admitted)} admitted tasks "
                  "all scheduled, schedule power-valid)")
        else:
            print(f"check: ok ({len(admitted)} admitted tasks "
                  "all scheduled; power validation skipped — "
                  "fault replays stretch durations the client "
                  "cannot reconstruct, replay locally for a "
                  "full check)")
    return 0


def _parse_prometheus(text: str) \
        -> "tuple[dict[str, float], dict[str, dict[str, float]]]":
    """Split exposition text into plain samples and quantile maps."""
    import re
    plain: "dict[str, float]" = {}
    quantiles: "dict[str, dict[str, float]]" = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        try:
            number = float(value)
        except ValueError:
            continue
        if "{" in key:
            name, labels = key.split("{", 1)
            match = re.search(r'quantile="([^"]+)"', labels)
            if match:
                quantiles.setdefault(name, {})[match.group(1)] = \
                    number
        else:
            plain[key] = number
    return plain, quantiles


def _top_frame(server_url: str, plain: "dict[str, float]",
               quantiles: "dict[str, dict[str, float]]",
               debug: "dict") -> str:
    """One ``repro-schedule top`` screen, as plain text."""
    def metric(name: str, default: float = 0.0) -> float:
        return plain.get(name, default)

    def rate(hits: float, misses: float) -> str:
        total = hits + misses
        if total <= 0:
            return "-"
        return f"{100.0 * hits / total:.1f}%"

    lines = [f"repro solve server @ {server_url}", ""]
    lines.append(
        f"queue depth {metric('repro_serving_queue_depth'):>6.0f}   "
        f"batches {metric('repro_serving_batches'):>6.0f}   "
        f"jobs accepted "
        f"{metric('repro_serving_jobs_accepted'):>6.0f}")
    lines.append(
        f"http reqs   "
        f"{metric('repro_serving_http_requests'):>6.0f}   "
        f"errors  {metric('repro_serving_http_errors'):>6.0f}   "
        f"batch jobs p50 "
        f"{quantiles.get('repro_serving_batch_jobs', {}).get('0.50', 0):>5.1f}")
    cache_hits = metric("repro_engine_cache_hits")
    cache_misses = metric("repro_engine_cache_misses")
    store_hits = metric("repro_engine_store_range_hits")
    store_misses = metric("repro_engine_store_misses")
    lines.append(
        f"cache hit rate {rate(cache_hits, cache_misses):>7} "
        f"({cache_hits:.0f}/{cache_hits + cache_misses:.0f})   "
        f"store hit rate {rate(store_hits, store_misses):>7} "
        f"({store_hits:.0f}/{store_hits + store_misses:.0f})")
    lines.append("")
    lines.append(f"{'endpoint':<20} {'count':>7} {'p50 ms':>9} "
                 f"{'p99 ms':>9}")
    prefix, suffix = "repro_serving_latency_", "_seconds"
    seen = False
    for name in sorted(quantiles):
        if not name.startswith(prefix) or not name.endswith(suffix):
            continue
        seen = True
        endpoint = name[len(prefix):-len(suffix)].replace("_", ".")
        count = plain.get(f"{name}_count", 0.0)
        p50 = 1000.0 * quantiles[name].get("0.50", 0.0)
        p99 = 1000.0 * quantiles[name].get("0.99", 0.0)
        lines.append(f"{endpoint:<20} {count:>7.0f} {p50:>9.2f} "
                     f"{p99:>9.2f}")
    if not seen:
        lines.append("(no requests observed yet)")
    recent = debug.get("requests") or []
    notable = debug.get("notable") or []
    lines.append("")
    lines.append(f"recent requests (newest first, "
                 f"capacity {debug.get('capacity', '?')}, "
                 f"slow >= {debug.get('slow_ms', '?')} ms):")
    for record in recent[:8]:
        lines.append(
            f"  {record.get('status', '?'):>3} "
            f"{record.get('method', '?'):<6} "
            f"{record.get('path', '?'):<28} "
            f"{record.get('latency_ms', 0):>9.2f} ms  "
            f"trace={record.get('trace_id', '')[:16]}")
    if not recent:
        lines.append("  (none)")
    if notable:
        lines.append(f"notable (slow/errored): {len(notable)} "
                     f"retained; newest: "
                     f"{notable[0].get('method', '?')} "
                     f"{notable[0].get('path', '?')} "
                     f"{notable[0].get('latency_ms', 0):.2f} ms "
                     f"status {notable[0].get('status', '?')}"
                     + (f" error={notable[0]['error']}"
                        if notable[0].get("error") else ""))
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time as time_module
    from .serving import ServingClient, ServingError

    client = ServingClient(args.server, timeout=5.0)
    while True:
        try:
            plain, quantiles = _parse_prometheus(
                client.metrics_text())
            debug = client.debug_requests()
        except (ServingError, OSError) as exc:
            print(f"error: cannot poll {args.server}: {exc}",
                  file=sys.stderr)
            if args.once:
                return 1
            time_module.sleep(max(0.1, args.interval))
            continue
        frame = _top_frame(args.server, plain, quantiles, debug)
        if args.once:
            print(frame)
            return 0
        # Clear + home, like watch(1); plain text otherwise.
        print(f"\x1b[2J\x1b[H{frame}", flush=True)
        time_module.sleep(max(0.1, args.interval))


def _cmd_example() -> int:
    from .examples_data import fig1_options, fig1_problem
    pipeline = PowerAwareScheduler(fig1_options()).solve_pipeline(
        fig1_problem())
    for label, result in (("Fig. 2 - time-valid", pipeline.timing),
                          ("Fig. 5 - power-valid", pipeline.max_power),
                          ("Fig. 7 - improved", pipeline.min_power)):
        print()
        print(f"### {label}")
        print(render_chart(chart_result(result, title=label)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
