"""Power sources and energy accounting.

Models the Mars rover's supply side: a solar panel whose output is free
but unstorable, and a non-rechargeable battery with a hard output cap.
The :class:`PowerSystem` composition turns these into the ``(P_max,
P_min)`` constraints the schedulers consume, and the accounting helpers
split a schedule's energy into free vs costly portions.
"""

from .accounting import (EnergySplit, split_energy,
                         split_energy_against_solar)
from .battery import (Battery, BatteryDepletedError, IdealBattery,
                      RateCapacityBattery)
from .shutdown import (AlwaysOn, IdleInterval, OracleShutdown,
                       ShutdownPolicy, TimeoutShutdown,
                       idle_energy_report, idle_intervals)
from .solar import ConstantSolar, DiurnalSolar, SolarModel, StepSolar
from .supply import AbsorbReport, PowerSystem

__all__ = [
    "AbsorbReport",
    "AlwaysOn",
    "Battery",
    "BatteryDepletedError",
    "ConstantSolar",
    "DiurnalSolar",
    "EnergySplit",
    "IdealBattery",
    "IdleInterval",
    "OracleShutdown",
    "PowerSystem",
    "RateCapacityBattery",
    "ShutdownPolicy",
    "SolarModel",
    "StepSolar",
    "TimeoutShutdown",
    "idle_energy_report",
    "idle_intervals",
    "split_energy",
    "split_energy_against_solar",
]
