"""The hybrid power system: solar panel + non-rechargeable battery.

Combines a :class:`~repro.power.solar.SolarModel` and a
:class:`~repro.power.battery.Battery` into the environment the
schedulers see:

* ``P_max(t) = solar(t) + battery.max_power`` — the hard supply budget
  ("the max power constraint is equal to the available solar power plus
  10 W maximum battery power output"),
* ``P_min(t) = solar(t)`` — the free level to utilize greedily.

:meth:`PowerSystem.constraints_at` snapshots both for a scheduling run;
:meth:`PowerSystem.absorb` runs a consumed power profile against the
system, drawing the battery for the portion above solar and reporting
how much free energy was used vs wasted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.profile import PowerProfile
from ..errors import ReproError
from .battery import Battery
from .solar import SolarModel

__all__ = ["PowerSystem", "AbsorbReport"]


@dataclass
class AbsorbReport:
    """Energy bookkeeping from running a profile against the supply."""

    duration: float
    consumed: float
    free_used: float
    free_wasted: float
    battery_delivered: float
    battery_charge_used: float

    @property
    def free_available(self) -> float:
        return self.free_used + self.free_wasted

    @property
    def utilization(self) -> float:
        """Fraction of free energy absorbed (the paper's rho)."""
        if self.free_available <= 0:
            return 1.0
        return self.free_used / self.free_available


class PowerSystem:
    """A solar panel and a battery feeding one load bus."""

    def __init__(self, solar: SolarModel, battery: Battery):
        self.solar = solar
        self.battery = battery

    # ------------------------------------------------------------------

    def p_max(self, t: float) -> float:
        """Hard supply budget at mission time ``t``."""
        return self.solar.power(t) + self.battery.max_power

    def p_min(self, t: float) -> float:
        """Free power level at mission time ``t``."""
        return self.solar.power(t)

    def constraints_at(self, t: float) -> "tuple[float, float]":
        """``(P_max, P_min)`` snapshot for a scheduling run at ``t``."""
        return self.p_max(t), self.p_min(t)

    # ------------------------------------------------------------------

    def absorb(self, profile: PowerProfile, start_time: float = 0.0) \
            -> AbsorbReport:
        """Execute a consumed-power profile starting at ``start_time``.

        Splits each stretch of constant consumption and constant solar
        output: consumption up to the solar level is free; the excess is
        drawn from the battery (raising
        :class:`~repro.power.battery.BatteryDepletedError` when empty
        and :class:`ReproError` when the excess exceeds the battery's
        max output — i.e. the profile was not power-valid for this
        supply).
        """
        consumed = 0.0
        free_used = 0.0
        free_wasted = 0.0
        delivered = 0.0
        charge = 0.0
        for seg_start, seg_end, level in profile.segments:
            t0 = start_time + seg_start
            t1 = start_time + seg_end
            points = [t0] + self.solar.breakpoints(t0, t1) + [t1]
            for a, b in zip(points, points[1:]):
                dt = b - a
                solar_level = self.solar.power(a)
                used = min(level, solar_level)
                excess = max(level - solar_level, 0.0)
                consumed += level * dt
                free_used += used * dt
                free_wasted += (solar_level - used) * dt
                if excess > 0:
                    if excess > self.battery.max_power + 1e-9:
                        raise ReproError(
                            f"profile draws {excess:g} W above solar at "
                            f"t={a:g}, exceeding battery max "
                            f"{self.battery.max_power:g} W — the "
                            "schedule is not power-valid for this supply")
                    charge += self.battery.draw(excess, dt)
                    delivered += excess * dt
        return AbsorbReport(
            duration=profile.horizon,
            consumed=consumed,
            free_used=free_used,
            free_wasted=free_wasted,
            battery_delivered=delivered,
            battery_charge_used=charge,
        )

    def __repr__(self) -> str:
        return f"PowerSystem({self.solar!r}, {self.battery!r})"
