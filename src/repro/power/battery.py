"""Battery models — the *costly*, non-rechargeable power source.

The Pathfinder rover's battery cannot be recharged, so every joule it
supplies shortens the mission; the scheduler's energy cost
``Ec_sigma(P_min)`` is exactly the battery draw.  The paper also
motivates the min-power (jitter-control) constraint by battery health;
to let the benchmarks quantify that, we provide a rate-dependent model
alongside the ideal one.

* :class:`IdealBattery` — fixed capacity, hard max output power, energy
  drawn equals energy delivered.
* :class:`RateCapacityBattery` — a simplified Peukert-style model where
  delivering power above a rated level wastes extra charge
  (``drawn = delivered * (1 + alpha * max(0, P/P_rated - 1))``).
  Flatter power curves (lower jitter) therefore stretch real capacity,
  which is the quantitative backing for the paper's jitter argument.
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["Battery", "IdealBattery", "RateCapacityBattery",
           "BatteryDepletedError"]


class BatteryDepletedError(ReproError):
    """Raised when a draw exceeds the remaining battery charge."""


class Battery:
    """Interface for non-rechargeable batteries."""

    #: Hard limit on instantaneous output power (Table 2: 10 W max).
    max_power: float

    @property
    def remaining(self) -> float:
        """Remaining deliverable energy in joules (under rated draw)."""
        raise NotImplementedError

    def draw(self, power: float, duration: float) -> float:
        """Deliver ``power`` watts for ``duration`` seconds.

        Returns the charge actually consumed (>= delivered energy for
        non-ideal models).  Raises :class:`BatteryDepletedError` when
        the charge runs out and :class:`ReproError` when the request
        exceeds ``max_power``.
        """
        raise NotImplementedError

    def _check_request(self, power: float, duration: float) -> None:
        if power < 0 or duration < 0:
            raise ReproError(
                f"invalid draw request ({power} W for {duration} s)")
        if power > self.max_power + 1e-9:
            raise ReproError(
                f"draw of {power:g} W exceeds battery max output "
                f"{self.max_power:g} W")


class IdealBattery(Battery):
    """Energy-conserving battery with a hard output-power cap."""

    def __init__(self, capacity: float, max_power: float = 10.0):
        if capacity < 0:
            raise ReproError(f"capacity must be >= 0, got {capacity}")
        if max_power < 0:
            raise ReproError(f"max_power must be >= 0, got {max_power}")
        self.capacity = capacity
        self.max_power = max_power
        self._used = 0.0

    @property
    def remaining(self) -> float:
        return max(self.capacity - self._used, 0.0)

    @property
    def used(self) -> float:
        """Charge consumed so far, in joules."""
        return self._used

    def draw(self, power: float, duration: float) -> float:
        self._check_request(power, duration)
        energy = power * duration
        if energy > self.remaining + 1e-9:
            raise BatteryDepletedError(
                f"draw of {energy:g} J exceeds remaining charge "
                f"{self.remaining:g} J")
        self._used += energy
        return energy

    def __repr__(self) -> str:
        return (f"IdealBattery({self.remaining:g}/{self.capacity:g} J, "
                f"max {self.max_power:g} W)")


class RateCapacityBattery(Battery):
    """Battery whose efficiency drops above a rated output power.

    Parameters
    ----------
    capacity:
        Nominal charge in joules at or below the rated power.
    max_power:
        Hard limit on instantaneous output.
    rated_power:
        Output level up to which delivery is lossless.
    alpha:
        Penalty slope: delivering ``P > rated`` consumes
        ``1 + alpha * (P / rated - 1)`` joules of charge per delivered
        joule.  ``alpha = 0`` degenerates to :class:`IdealBattery`.
    """

    def __init__(self, capacity: float, max_power: float = 10.0,
                 rated_power: float = 5.0, alpha: float = 0.5):
        if capacity < 0:
            raise ReproError(f"capacity must be >= 0, got {capacity}")
        if rated_power <= 0:
            raise ReproError(
                f"rated_power must be > 0, got {rated_power}")
        if alpha < 0:
            raise ReproError(f"alpha must be >= 0, got {alpha}")
        self.capacity = capacity
        self.max_power = max_power
        self.rated_power = rated_power
        self.alpha = alpha
        self._used = 0.0

    @property
    def remaining(self) -> float:
        return max(self.capacity - self._used, 0.0)

    @property
    def used(self) -> float:
        """Charge consumed so far (including rate losses), in joules."""
        return self._used

    def inefficiency(self, power: float) -> float:
        """Charge consumed per delivered joule at an output level."""
        if power <= self.rated_power:
            return 1.0
        return 1.0 + self.alpha * (power / self.rated_power - 1.0)

    def draw(self, power: float, duration: float) -> float:
        self._check_request(power, duration)
        charge = power * duration * self.inefficiency(power)
        if charge > self.remaining + 1e-9:
            raise BatteryDepletedError(
                f"draw of {charge:g} J charge exceeds remaining "
                f"{self.remaining:g} J")
        self._used += charge
        return charge

    def __repr__(self) -> str:
        return (f"RateCapacityBattery({self.remaining:g}/"
                f"{self.capacity:g} J, rated {self.rated_power:g} W, "
                f"alpha={self.alpha:g})")
