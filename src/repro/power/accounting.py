"""Stand-alone energy accounting helpers.

These functions reproduce the paper's energy bookkeeping without
requiring a stateful battery object: given a consumed-power profile and
a free-power level (or solar model), they split energy into free-used,
free-wasted and battery-drawn portions.  They are the reference
implementation the metrics module and the mission simulator are tested
against (two independent code paths computing ``Ec`` and ``rho`` must
agree — a useful invariant for property-based tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.profile import PowerProfile
from .solar import ConstantSolar, SolarModel

__all__ = ["EnergySplit", "split_energy", "split_energy_against_solar"]


@dataclass(frozen=True)
class EnergySplit:
    """Energy totals over a profile against a free-power supply."""

    consumed: float
    free_used: float
    free_wasted: float
    battery_drawn: float

    @property
    def free_available(self) -> float:
        return self.free_used + self.free_wasted

    @property
    def utilization(self) -> float:
        """``rho``: free energy used / free energy available."""
        if self.free_available <= 0:
            return 1.0
        return self.free_used / self.free_available

    @property
    def energy_cost(self) -> float:
        """``Ec``: alias for the battery-drawn energy."""
        return self.battery_drawn


def split_energy(profile: PowerProfile, p_min: float) -> EnergySplit:
    """Split a profile's energy against a constant free level."""
    return split_energy_against_solar(profile, ConstantSolar(p_min))


def split_energy_against_solar(profile: PowerProfile, solar: SolarModel,
                               start_time: float = 0.0) -> EnergySplit:
    """Split a profile's energy against a time-varying solar model.

    The profile is assumed to begin at absolute mission time
    ``start_time`` (the solar model is queried in mission time).
    """
    consumed = 0.0
    free_used = 0.0
    free_wasted = 0.0
    battery = 0.0
    for seg_start, seg_end, level in profile.segments:
        t0 = start_time + seg_start
        t1 = start_time + seg_end
        points = [t0] + solar.breakpoints(t0, t1) + [t1]
        for a, b in zip(points, points[1:]):
            dt = b - a
            solar_level = solar.power(a)
            used = min(level, solar_level)
            consumed += level * dt
            free_used += used * dt
            free_wasted += (solar_level - used) * dt
            battery += max(level - solar_level, 0.0) * dt
    return EnergySplit(consumed=consumed, free_used=free_used,
                       free_wasted=free_wasted, battery_drawn=battery)
