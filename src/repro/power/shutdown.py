"""Idle-shutdown power management — the first related-work family.

Section 2 opens with shutdown-based power managers: "shutting down idle
subsystems ... can save a significant amount of power", citing
timeout-adaptive and predictive policies, and then criticizes them:
they do not handle timing constraints, and "they do not control their
workload; instead, they make the best effort ... by treating the
workload as a given".

This module implements that family *as analysis over a given schedule*
(exactly their operating model) so the paper's comparison is
measurable:

* :class:`AlwaysOn` — resources burn their idle power whenever no task
  of theirs runs;
* :class:`TimeoutShutdown` — a resource powers off after ``timeout``
  idle ticks and pays ``wake_energy`` (and ``wake_delay`` of on-time)
  before its next task; the classic fixed-timeout policy;
* :class:`OracleShutdown` — powers off the instant a gap starts if the
  gap is long enough to amortize the wake cost; the offline lower
  bound every online policy chases.

All three *consume* a schedule; none may move a task — which is
precisely why they are orthogonal to (and composable with) the paper's
scheduler: the power-aware scheduler shapes the workload, then a
shutdown policy harvests whatever idle time is left.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import Schedule
from ..errors import ReproError

__all__ = ["IdleInterval", "ShutdownPolicy", "AlwaysOn",
           "TimeoutShutdown", "OracleShutdown", "idle_intervals",
           "idle_energy_report"]


@dataclass(frozen=True)
class IdleInterval:
    """A maximal interval during which a resource runs no task."""

    resource: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def idle_intervals(schedule: Schedule, resource: str,
                   horizon: "int | None" = None) -> "list[IdleInterval]":
    """The resource's idle gaps over ``[0, horizon)``."""
    horizon = schedule.makespan if horizon is None else horizon
    busy = sorted((schedule.start(task.name), schedule.finish(task.name))
                  for task in schedule.graph.tasks_on(resource)
                  if task.duration > 0)
    out: "list[IdleInterval]" = []
    cursor = 0
    for start, end in busy:
        if start > cursor:
            out.append(IdleInterval(resource=resource, start=cursor,
                                    end=start))
        cursor = max(cursor, end)
    if cursor < horizon:
        out.append(IdleInterval(resource=resource, start=cursor,
                                end=horizon))
    return out


class ShutdownPolicy:
    """Interface: idle energy a resource burns over one idle gap."""

    name = "policy"

    def idle_energy(self, gap: IdleInterval, idle_power: float) -> float:
        raise NotImplementedError


class AlwaysOn(ShutdownPolicy):
    """No power management: idle power for the whole gap."""

    name = "always-on"

    def idle_energy(self, gap: IdleInterval, idle_power: float) -> float:
        return idle_power * gap.length


class TimeoutShutdown(ShutdownPolicy):
    """Fixed-timeout shutdown with a wake cost.

    The resource idles (at full idle power) for ``timeout`` ticks, then
    powers off; before the next task it pays ``wake_energy`` joules.
    A gap shorter than the timeout never powers off.  The final gap of
    a schedule pays no wake cost (nothing follows).
    """

    def __init__(self, timeout: int, wake_energy: float):
        if timeout < 0:
            raise ReproError(f"timeout must be >= 0, got {timeout}")
        if wake_energy < 0:
            raise ReproError(
                f"wake_energy must be >= 0, got {wake_energy}")
        self.timeout = timeout
        self.wake_energy = wake_energy
        self.name = f"timeout-{timeout}"

    def idle_energy(self, gap: IdleInterval, idle_power: float) -> float:
        if gap.length <= self.timeout:
            return idle_power * gap.length
        return idle_power * self.timeout + self.wake_energy


class OracleShutdown(ShutdownPolicy):
    """Clairvoyant policy: shuts down immediately iff it pays off."""

    def __init__(self, wake_energy: float):
        if wake_energy < 0:
            raise ReproError(
                f"wake_energy must be >= 0, got {wake_energy}")
        self.wake_energy = wake_energy
        self.name = "oracle"

    def idle_energy(self, gap: IdleInterval, idle_power: float) -> float:
        stay_on = idle_power * gap.length
        power_off = self.wake_energy
        return min(stay_on, power_off)


def idle_energy_report(schedule: Schedule, policy: ShutdownPolicy,
                       idle_powers: "dict[str, float]",
                       horizon: "int | None" = None) \
        -> "dict[str, float]":
    """Per-resource idle energy under a policy, plus a ``"total"`` key.

    ``idle_powers`` maps resource names to their idle draw; resources
    not listed fall back to the graph's declared idle power.
    """
    graph = schedule.graph
    report: "dict[str, float]" = {}
    total = 0.0
    for resource in graph.resources.names:
        idle_power = idle_powers.get(
            resource, graph.resources[resource].idle_power)
        if idle_power <= 0:
            continue
        gaps = idle_intervals(schedule, resource, horizon=horizon)
        # the trailing gap never pays a wake cost: charge it always-on
        # semantics under timeout policies by treating it specially
        energy = 0.0
        for index, gap in enumerate(gaps):
            trailing = index == len(gaps) - 1 \
                and gap.end == (horizon or schedule.makespan) \
                and gap.end > max(
                    (schedule.finish(t.name)
                     for t in graph.tasks_on(resource)
                     if t.duration > 0), default=0)
            if trailing and isinstance(policy, (TimeoutShutdown,
                                                OracleShutdown)):
                # powering off with no future task: pure shutdown,
                # no wake needed
                if isinstance(policy, TimeoutShutdown):
                    energy += idle_power * min(gap.length,
                                               policy.timeout)
                # oracle: free
            else:
                energy += policy.idle_energy(gap, idle_power)
        report[resource] = energy
        total += energy
    report["total"] = total
    return report
