"""Solar supply models — the *free* power source.

The paper's power-awareness hinges on distinguishing free power (a solar
panel whose output is lost if unused, because the battery is
non-rechargeable) from costly power.  The solar level defines both the
min power constraint ``P_min`` (use it greedily) and, together with the
battery's max output, the max power constraint ``P_max``.

Models:

* :class:`ConstantSolar` — a fixed level (one temperature case).
* :class:`StepSolar` — a piecewise-constant trace; the paper's mission
  scenario is ``14.9 W -> 12 W at 600 s -> 9 W at 1200 s``.
* :class:`DiurnalSolar` — a clamped half-sine day arc for longer
  synthetic missions (dawn -> noon peak -> dusk), an extension beyond
  the paper's three-point trace.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import ReproError

__all__ = ["SolarModel", "ConstantSolar", "StepSolar", "DiurnalSolar"]


class SolarModel:
    """Interface: instantaneous free power as a function of time."""

    def power(self, t: float) -> float:
        """Solar output in watts at absolute mission time ``t``."""
        raise NotImplementedError

    def breakpoints(self, t0: float, t1: float) -> "list[float]":
        """Times in ``(t0, t1)`` where the output changes level.

        Used by the energy ledger to integrate exactly over
        piecewise-constant stretches.  Continuous models return a fine
        sampling grid instead.
        """
        return []

    def energy(self, t0: float, t1: float) -> float:
        """Free energy available over ``[t0, t1]`` in joules."""
        if t1 < t0:
            raise ReproError(f"bad interval [{t0}, {t1}]")
        points = [t0] + [p for p in self.breakpoints(t0, t1)] + [t1]
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += self.power(a) * (b - a)
        return total


class ConstantSolar(SolarModel):
    """A fixed solar output (one temperature case of Table 2)."""

    def __init__(self, level: float):
        if level < 0:
            raise ReproError(f"solar level must be >= 0, got {level}")
        self.level = level

    def power(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"ConstantSolar({self.level:g} W)"


class StepSolar(SolarModel):
    """A piecewise-constant solar trace.

    ``steps`` is an iterable of ``(start_time, level)`` pairs; the level
    holds from its start time until the next step (the last level holds
    forever).  The first start time must be 0.
    """

    def __init__(self, steps: "Iterable[tuple[float, float]]"):
        self.steps = sorted(steps)
        if not self.steps:
            raise ReproError("StepSolar needs at least one step")
        if self.steps[0][0] != 0:
            raise ReproError(
                f"first step must start at t=0, got {self.steps[0][0]}")
        for t, level in self.steps:
            if level < 0:
                raise ReproError(f"negative solar level {level} at t={t}")

    def power(self, t: float) -> float:
        level = self.steps[0][1]
        for start, value in self.steps:
            if start <= t:
                level = value
            else:
                break
        return level

    def breakpoints(self, t0: float, t1: float) -> "list[float]":
        return [start for start, _ in self.steps if t0 < start < t1]

    @staticmethod
    def paper_mission() -> "StepSolar":
        """The Table 4 scenario trace: 14.9 W, then 12 W at 600 s, then
        9 W at 1200 s."""
        return StepSolar([(0, 14.9), (600, 12.0), (1200, 9.0)])

    def __repr__(self) -> str:
        body = ", ".join(f"{t:g}s:{lvl:g}W" for t, lvl in self.steps)
        return f"StepSolar({body})"


class DiurnalSolar(SolarModel):
    """A half-sine day arc: 0 at dawn/dusk, ``peak`` at noon.

    ``power(t) = peak * sin(pi * (t - dawn) / (dusk - dawn))`` clamped
    at 0 outside daylight.  ``resolution`` controls the integration grid
    of :meth:`breakpoints`.
    """

    def __init__(self, peak: float, dawn: float = 0.0,
                 dusk: float = 36_000.0, resolution: float = 60.0):
        if peak < 0:
            raise ReproError(f"peak must be >= 0, got {peak}")
        if dusk <= dawn:
            raise ReproError("dusk must be after dawn")
        if resolution <= 0:
            raise ReproError("resolution must be positive")
        self.peak = peak
        self.dawn = dawn
        self.dusk = dusk
        self.resolution = resolution

    def power(self, t: float) -> float:
        if t <= self.dawn or t >= self.dusk:
            return 0.0
        phase = (t - self.dawn) / (self.dusk - self.dawn)
        return self.peak * math.sin(math.pi * phase)

    def breakpoints(self, t0: float, t1: float) -> "list[float]":
        points = []
        t = math.floor(t0 / self.resolution + 1) * self.resolution
        while t < t1:
            points.append(t)
            t += self.resolution
        return points

    def __repr__(self) -> str:
        return (f"DiurnalSolar(peak={self.peak:g} W, "
                f"daylight=[{self.dawn:g}, {self.dusk:g}] s)")
