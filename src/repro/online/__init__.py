"""Online rolling-horizon mission sessions.

The offline solvers take the whole task set at once;
:class:`MissionSession` accepts tasks as they *arrive*, admitting or
rejecting each against the power and timing constraints with the
already-started prefix frozen, and re-planning on injected faults.  A
quiesced session that saw every task up front reproduces the offline
solve bit-for-bit (the quiescence theorem,
``tests/test_online_differential.py``).

See ``docs/online.md`` for the operator's guide and the wire protocol
(``POST /v1/sessions``).
"""

from .script import (SessionScript, arrivals_from_problem, load_script,
                     problem_from_script, replay_script,
                     script_from_problem)
from .session import SESSION_SCHEDULERS, MissionSession, SessionConfig

__all__ = [
    "MissionSession",
    "SessionConfig",
    "SESSION_SCHEDULERS",
    "SessionScript",
    "arrivals_from_problem",
    "load_script",
    "problem_from_script",
    "replay_script",
    "script_from_problem",
]
