"""The stateful mission-session engine: online rolling-horizon solves.

Everything else in the repository is offline batch — the full task set
goes in, a schedule comes out.  A :class:`MissionSession` opens the
online scenario the paper's mission framing implies (rover comm
windows, sensor triggers): tasks *arrive over time* and the session
maintains a live schedule under the paper's constraints:

* **admit/reject on arrival** — an arriving task (plus the min/max
  separations it brings) is admitted iff the whole remaining problem
  still has a valid schedule under ``P_max`` with every committed task
  frozen; otherwise the arrival is rejected and the session state is
  untouched (the graph checkpoint/rollback machinery makes the failed
  attempt free);
* **committed prefix is frozen** — once mission time passes a task's
  scheduled start the task has physically begun; it is locked at its
  executed start time and no later re-solve may move it;
* **incremental suffix re-solve** — each re-solve copies the session's
  constraint graph (the copy carries the warm-start journal state of
  :mod:`repro.core.kernel`, so consecutive solves of the growing
  mission hit the warm pool instead of paying cold Bellman–Ford), adds
  the freeze locks and ``sigma(v) >= now`` releases, and runs the
  normal offline scheduler on the remainder;
* **replan on faults** — injected overruns
  (:class:`~repro.execution.faults.FixedOverruns`) are executed against
  the live schedule and the remainder is re-planned through
  :func:`repro.execution.replan.replan`, exactly the paper's Section
  5.3 runtime loop.

The **quiescence theorem** anchors the semantics: a session fed every
task up front (mission clock still at 0, nothing committed) and then
quiesced produces a schedule *bit-identical* to the offline
:class:`~repro.scheduling.min_power.MinPowerScheduler` /
:class:`~repro.scheduling.max_power.MaxPowerScheduler` solve of the
same problem — the online engine adds admission control and history
freezing, never arithmetic.  ``tests/test_online_differential.py``
enforces this under both solver kernels and with warm-start on or off.

Sessions surface on the wire protocol as ``POST /v1/sessions`` (see
``docs/online.md``); this module is the transport-free core.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME
from ..core.validation import check_power_valid, check_time_valid
from ..errors import (GraphError, InfeasibleError, PositiveCycleError,
                      ReproError, SchedulingFailure, ValidationError)
from ..execution.executor import ScheduleExecutor
from ..execution.faults import FixedOverruns
from ..execution.replan import replan
from ..obs import OBS
from ..scheduling.base import ScheduleResult, SchedulerOptions
from ..scheduling.max_power import MaxPowerScheduler
from ..scheduling.min_power import MinPowerScheduler

__all__ = ["MissionSession", "SessionConfig", "SESSION_SCHEDULERS",
           "apply_constraint", "parse_constraint"]

#: Scheduler selections a session accepts.  ``min_power`` is the full
#: paper pipeline (timing -> max power -> min power); ``max_power``
#: stops after spike elimination (no gap filling).
SESSION_SCHEDULERS = ("min_power", "max_power")

#: Exception types that mean "this arrival cannot be scheduled" rather
#: than "the caller broke the API"; they turn into reject events.
_REJECTION_ERRORS = (SchedulingFailure, InfeasibleError,
                     PositiveCycleError, GraphError, ValidationError)


@dataclass
class SessionConfig:
    """Everything that parameterizes one mission session.

    Attributes
    ----------
    p_max / p_min / baseline:
        The power environment every admission decision and re-solve
        runs under — the same semantics as
        :class:`~repro.core.problem.SchedulingProblem` (``P_max`` is
        the hard admission constraint; ``P_min`` shapes the min-power
        improvement stage, it never rejects an arrival).
    scheduler:
        ``"min_power"`` (default, full pipeline) or ``"max_power"``.
    options:
        :class:`~repro.scheduling.base.SchedulerOptions` forwarded to
        every solve; defaults reproduce the paper's heuristics.
    name:
        Session (and constraint graph) name, used in problem labels.
    """

    p_max: float
    p_min: float = 0.0
    baseline: float = 0.0
    scheduler: str = "min_power"
    options: "SchedulerOptions | None" = None
    name: str = "mission"

    def __post_init__(self) -> None:
        if self.scheduler not in SESSION_SCHEDULERS:
            raise ReproError(
                f"unknown session scheduler {self.scheduler!r}; "
                f"pick from {SESSION_SCHEDULERS}")
        # Delegate the numeric validation to the problem container.
        SchedulingProblem(ConstraintGraph("config-check"),
                          p_max=self.p_max, p_min=self.p_min,
                          baseline=self.baseline)


@dataclass(frozen=True)
class _Constraint:
    """One parsed arrival constraint (see :meth:`MissionSession.offer`)."""

    kind: str
    src: "str | None" = None
    dst: "str | None" = None
    value: int = 0


def parse_constraint(arriving: str,
                     record: "Mapping[str, Any]") -> _Constraint:
    """Parse one wire-shape constraint record (see
    :meth:`MissionSession.offer` for the table) brought by the arrival
    of task ``arriving``."""
    kind = record.get("kind")
    if kind in ("min", "max"):
        src = record.get("src", arriving)
        dst = record.get("dst", arriving)
        return _Constraint(kind=kind, src=src, dst=dst,
                           value=int(record["sep"]))
    if kind == "precedence":
        return _Constraint(kind=kind, src=record["src"],
                           dst=arriving,
                           value=int(record.get("gap", 0)))
    if kind == "release":
        return _Constraint(kind=kind, dst=arriving,
                           value=int(record["time"]))
    if kind == "deadline":
        return _Constraint(kind=kind, dst=arriving,
                           value=int(record["time"]))
    raise ReproError(f"unknown constraint kind {kind!r}")


def apply_constraint(graph: ConstraintGraph,
                     constraint: _Constraint) -> None:
    """Apply one parsed arrival constraint to a constraint graph."""
    if constraint.kind == "min":
        graph.add_min_separation(constraint.src, constraint.dst,
                                 constraint.value)
    elif constraint.kind == "max":
        graph.add_max_separation(constraint.src, constraint.dst,
                                 constraint.value)
    elif constraint.kind == "precedence":
        graph.add_precedence(constraint.src, constraint.dst,
                             gap=constraint.value)
    elif constraint.kind == "release":
        graph.add_release(constraint.dst, constraint.value)
    elif constraint.kind == "deadline":
        graph.add_start_deadline(constraint.dst, constraint.value)


class MissionSession:
    """A live online scheduling session; see the module docstring.

    State model:

    * ``now`` — the mission clock (integer ticks), monotone;
    * ``spans`` — committed tasks only: ``name -> (start, end)`` with
      the *executed* start and (possibly fault-stretched) end;
    * ``schedule`` — the current plan for every admitted task
      (committed history plus planned suffix);
    * ``events`` — the append-only mission journal (admit / reject /
      commit / replan / quiesce records), which the serving layer
      streams out as ``repro-session-event`` v1 documents.
    """

    def __init__(self, config: SessionConfig):
        self.config = config
        self.options = config.options or SchedulerOptions()
        self._graph = ConstraintGraph(config.name)
        self.now = 0
        #: Committed (started) tasks: name -> [start, end) actual span.
        self.spans: "dict[str, tuple[int, int]]" = {}
        self.admitted: "list[str]" = []
        self.rejected: "list[tuple[str, str]]" = []
        self.events: "list[dict[str, Any]]" = []
        self.closed = False
        self._result: "ScheduleResult | None" = None
        self._solves = 0
        self._emit("open", scheduler=config.scheduler,
                   p_max=config.p_max, p_min=config.p_min)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def schedule(self) -> "Schedule | None":
        """The current plan (history + suffix), or None before any
        admission."""
        return self._result.schedule if self._result else None

    @property
    def result(self) -> "ScheduleResult | None":
        """The most recent solve result."""
        return self._result

    @property
    def committed(self) -> "dict[str, int]":
        """Frozen tasks and their executed start times."""
        return {name: span[0] for name, span in self.spans.items()}

    @property
    def pending(self) -> "list[str]":
        """Admitted tasks that have not started yet."""
        return [name for name in self.admitted
                if name not in self.spans]

    @property
    def solves(self) -> int:
        """Number of suffix re-solves performed so far."""
        return self._solves

    def problem(self) -> SchedulingProblem:
        """The session's accumulated problem (user constraints only)."""
        return SchedulingProblem(graph=self._graph,
                                 p_max=self.config.p_max,
                                 p_min=self.config.p_min,
                                 baseline=self.config.baseline,
                                 name=self.config.name)

    # ------------------------------------------------------------------
    # the mission clock
    # ------------------------------------------------------------------

    def advance(self, to: int) -> "list[dict[str, Any]]":
        """Move the mission clock to ``to``; commit every task whose
        planned start the clock passed.

        A task with planned start ``s < to`` has physically begun; it
        is frozen at ``s`` (a task starting exactly at ``to`` is still
        movable — it has not been dispatched yet).  The clock never
        moves backward: ``to <= now`` is a no-op.  Returns the commit
        events emitted, oldest first.
        """
        self._check_open()
        if not isinstance(to, int) or isinstance(to, bool) or to < 0:
            raise ReproError(
                f"mission clock must be a non-negative integer, "
                f"got {to!r}")
        if to <= self.now:
            return []
        out = []
        if self._result is not None:
            starters = sorted(
                (self._result.schedule.start(name), name)
                for name in self.pending
                if self._result.schedule.start(name) < to)
            for start, name in starters:
                duration = self._graph.task(name).duration
                self.spans[name] = (start, start + duration)
                out.append(self._emit("commit", task=name,
                                      start=start, at=start))
        self.now = to
        return out

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------

    def offer(self, name: str, duration: int, power: float = 0.0,
              resource: "str | None" = None,
              constraints: "Iterable[Mapping[str, Any]]" = (),
              at: "int | None" = None) -> "dict[str, Any]":
        """One task arrival: admit it (re-solving the suffix) or
        reject it (session state untouched).

        ``constraints`` is an iterable of mapping records naming the
        separations the arrival brings (the wire shape of
        ``docs/online.md``):

        ========================================= =====================
        ``{"kind": "min", "src", "dst", "sep"}``  min separation
        ``{"kind": "max", "src", "dst", "sep"}``  max separation
        ``{"kind": "precedence", "src", "gap"}``  end-to-start after
                                                  ``src`` (gap >= 0)
        ``{"kind": "release", "time": t}``        release of the
                                                  arriving task
        ``{"kind": "deadline", "time": t}``       start deadline of the
                                                  arriving task
        ========================================= =====================

        ``src``/``dst`` may name the arriving task or any already
        *admitted* task; a constraint against a rejected or unknown
        task rejects the arrival.  A late arrival (``at < now``) is
        clamped to ``now`` — mission reality delivered it late, the
        session processes it now.

        Returns the admit or reject event record.
        """
        self._check_open()
        if at is not None:
            self.advance(at)
        parsed = [parse_constraint(name, record)
                  for record in constraints]
        token = self._graph.checkpoint()
        tasks_before = len(self._graph)
        try:
            self._graph.new_task(name, duration=duration, power=power,
                                 resource=resource)
            for constraint in parsed:
                apply_constraint(self._graph, constraint)
            result = self._resolve_suffix()
        except _REJECTION_ERRORS as exc:
            self._graph.rollback(token)
            if len(self._graph) > tasks_before:
                # Tasks are append-only; drop the speculative vertex by
                # rebuilding the session graph without it.
                self._graph = self._rebuild_without(name)
            self.rejected.append((name, str(exc)))
            return self._emit("reject", task=name, reason=str(exc))
        self.admitted.append(name)
        self._adopt(result)
        return self._emit("admit", task=name,
                          start=result.schedule.start(name),
                          makespan=result.schedule.makespan)

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def inject_fault(self, overruns: "Mapping[str, int]",
                     at: "int | None" = None) -> "dict[str, Any]":
        """Execute the live schedule under injected overruns up to
        ``at`` (default: ``now``), then re-plan the remainder.

        The current plan is run through the event-driven executor
        (:class:`~repro.execution.executor.ScheduleExecutor`, policy
        ``self_timed``) with a
        :class:`~repro.execution.faults.FixedOverruns` duration model;
        every task the execution *started* is frozen at its actual
        start (overruns stretch the separations of still-running tasks
        exactly as :func:`repro.execution.replan.replan` prescribes),
        and the remainder is re-solved by the session's configured
        scheduler under the session's power constraints.  Committed
        history never moves — the replay folds the stretches realized
        by *earlier* faults into its duration model, so a second fault
        can neither forget nor shrink the first one — and the
        re-planned suffix is power-valid from ``at`` on.

        Returns the replan event record.
        """
        self._check_open()
        if self._result is None:
            raise ReproError("cannot inject a fault before any task "
                             "has been admitted")
        when = self.now if at is None else at
        if when < self.now:
            raise ReproError(
                f"fault time {when} is before the mission clock "
                f"{self.now}")
        unknown = [name for name in overruns
                   if name not in self._graph]
        if unknown:
            raise ReproError(
                f"overruns name unknown task(s) {unknown}")
        # The executor replays the plan from tick 0, so its duration
        # model must describe the *whole* realized mission, not just
        # this fault: fold the extras already recorded in committed
        # spans into the model (max-merged with the new overruns), or
        # a second fault would revert the first fault's stretches.
        merged = dict(overruns)
        for name, (start, end) in self.spans.items():
            realized = (end - start) - self._graph.task(name).duration
            if realized > 0:
                merged[name] = max(merged.get(name, 0), realized)
        model = FixedOverruns(merged)
        problem = self.problem()
        with OBS.span("online.fault", session=self.config.name,
                      at=when, overruns=len(overruns)):
            executor = ScheduleExecutor(problem,
                                        self._result.schedule,
                                        durations=model,
                                        policy="self_timed")
            snapshot = executor.run(until=when)
            # Reconcile the replay with recorded history before
            # anything consumes it: committed starts are immovable and
            # realized ends only ever grow, so prior spans win on start
            # and the longer end wins on duration.
            spans = dict(snapshot.spans)
            for name, (start, end) in self.spans.items():
                seen = spans.get(name)
                spans[name] = (start, end if seen is None
                               else max(end, seen[1]))
            snapshot = replace(snapshot, spans=spans)
            # Hand replan a problem whose graph already represents the
            # stretched reality (realized durations + pushed
            # end-anchored separations); replan adds the start locks
            # and ``sigma(v) >= now`` releases on top.
            work = SchedulingProblem(
                graph=self._stretched_copy(spans, when),
                p_max=self.config.p_max, p_min=self.config.p_min,
                baseline=self.config.baseline,
                name=self.config.name)
            result = replan(work, snapshot, now=when,
                            options=self.options,
                            scheduler=self._scheduler())
            self._solves += 1
        for name, (start, _end) in spans.items():
            if result.schedule.start(name) != start:
                raise SchedulingFailure(
                    f"fault replan moved committed task {name!r} from "
                    f"{start} to {result.schedule.start(name)}")
        # Reconciled spans (with realized ends) are the new committed
        # history; everything else follows the new plan.
        self.spans = spans
        self.now = when
        self._result = result
        return self._emit("replan", overruns=dict(overruns),
                          frozen=sorted(spans),
                          makespan=result.schedule.makespan)

    # ------------------------------------------------------------------
    # quiescence
    # ------------------------------------------------------------------

    def quiesce(self) -> "ScheduleResult | None":
        """No further arrivals are coming: run one final clean
        re-solve and return it.

        With nothing committed and the clock still at 0 this is *the
        offline solve* of the accumulated problem — same graph, same
        scheduler, same options — which is exactly the quiescence
        theorem the differential suite pins bit-identical.
        """
        self._check_open()
        if not self.admitted:
            self._emit("quiesce", tasks=0, makespan=0)
            return None
        result = self._resolve_suffix()
        self._adopt(result)
        self._emit("quiesce", tasks=len(self.admitted),
                   makespan=result.schedule.makespan,
                   energy_cost=result.energy_cost,
                   utilization=result.utilization,
                   peak_power=result.metrics.peak_power)
        return result

    def close(self) -> "dict[str, Any]":
        """Close the session; further mutations raise."""
        if self.closed:
            return self.events[-1]
        self.closed = True
        return self._emit("close", admitted=len(self.admitted),
                          rejected=len(self.rejected))

    # ------------------------------------------------------------------
    # command dispatch (the wire/CLI shape)
    # ------------------------------------------------------------------

    def apply(self, command: "Mapping[str, Any]") \
            -> "list[dict[str, Any]]":
        """Apply one parsed session command; return the events it
        produced, oldest first.

        Commands are the validated dictionaries of
        :func:`repro.io.requests.session_command_from_dict`:
        ``arrival`` / ``advance`` / ``fault`` / ``quiesce``.
        """
        kind = command.get("event")
        before = len(self.events)
        if kind == "arrival":
            task = command["task"]
            self.offer(task["name"], duration=task["duration"],
                       power=task.get("power", 0.0),
                       resource=task.get("resource"),
                       constraints=command.get("constraints", ()),
                       at=command.get("at"))
        elif kind == "advance":
            self.advance(command["to"])
        elif kind == "fault":
            self.inject_fault(command["overruns"],
                              at=command.get("at"))
        elif kind == "quiesce":
            self.quiesce()
        else:
            raise ReproError(f"unknown session command {kind!r}")
        return self.events[before:]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise ReproError("session is closed")

    def _emit(self, kind: str, **fields: Any) -> "dict[str, Any]":
        event = {"seq": len(self.events), "event": kind,
                 "now": self.now}
        event.update(fields)
        self.events.append(event)
        return event

    def _scheduler(self):
        if self.config.scheduler == "max_power":
            return MaxPowerScheduler(self.options)
        return MinPowerScheduler(self.options)

    def _resolve_suffix(self) -> ScheduleResult:
        """Re-solve the mission with history frozen and the suffix
        released at ``now``.

        The pristine-state fast path (clock at 0, nothing committed)
        hands the scheduler the session graph itself — no extra edges —
        so the solve is bit-identical to the offline one; the general
        path works on a copy decorated with lock/release edges (the
        copy carries the kernel warm-start state, making consecutive
        session solves warm).
        """
        problem = self.problem()
        if not self.spans and self.now == 0:
            work = problem
        else:
            graph = self._frozen_graph()
            work = SchedulingProblem(
                graph=graph, p_max=self.config.p_max,
                p_min=self.config.p_min,
                baseline=self.config.baseline,
                name=f"{self.config.name}@t={self.now}")
        with OBS.span("online.resolve", session=self.config.name,
                      tasks=len(self._graph), now=self.now,
                      committed=len(self.spans)):
            result = self._scheduler().solve(work)
        self._solves += 1
        for name, (start, _end) in self.spans.items():
            if result.schedule.start(name) != start:
                raise SchedulingFailure(
                    f"re-solve moved committed task {name!r} from "
                    f"{start} to {result.schedule.start(name)}")
        return result

    def _frozen_graph(self) -> ConstraintGraph:
        """A working copy: locks for history, releases for the suffix.

        Mirrors :func:`repro.execution.replan.replan`'s freeze rules so
        overrun-stretched separations recorded in ``spans`` survive
        later arrivals' re-solves too.
        """
        graph = self._stretched_copy()
        for name, (start, _end) in self.spans.items():
            graph.lock_start(name, start, tag="frozen")
        for name in self._graph.task_names():
            if name not in self.spans:
                graph.add_release(name, self.now, tag="replan")
        return graph

    def _stretched_copy(self, spans: "Mapping[str, tuple[int, int]]"
                        " | None" = None,
                        now: "int | None" = None) -> ConstraintGraph:
        """A working copy where still-running overruns are *real*.

        A committed task whose realized span outlives its nominal
        duration is still occupying its resource and drawing its power
        right now; representing it at nominal length would let the
        scheduler overlap new work with the tail of its execution.  The
        copy (a) pushes its end-anchored separations (edges at least
        one nominal duration long — the paper's precedence encoding)
        out by the overrun, toward not-yet-started tasks only, and (b)
        replaces its duration with the realized one, so resource
        exclusion and the power profile see the stretch too.
        """
        spans = self.spans if spans is None else spans
        now = self.now if now is None else now
        graph = self._graph.copy()
        for name, (start, end) in spans.items():
            nominal = graph.task(name).duration
            overrun = (end - start) - nominal
            if end > now and overrun > 0:
                for edge in graph.out_edges(name):
                    if edge.weight >= nominal \
                            and edge.dst != ANCHOR_NAME \
                            and edge.dst not in spans:
                        graph.add_edge(name, edge.dst,
                                       edge.weight + overrun,
                                       tag="replan")
                graph.set_duration(name, end - start)
        return graph

    def _rebuild_without(self, doomed: str) -> ConstraintGraph:
        """The session graph minus one (edge-free) speculative vertex.

        Only called on the rejection path, right after a rollback
        removed every edge the arrival added, so dropping the vertex
        cannot orphan constraints.
        """
        clone = ConstraintGraph(name=self._graph.name)
        for task in self._graph.tasks():
            if task.name != doomed:
                clone.add_task(task)
        for res in self._graph.resources:
            if res.name not in clone.resources:
                clone.resources.add(res)
            else:
                clone.resources._by_name[res.name] = res
        for edge in self._graph.edges():
            clone.add_edge(edge.src, edge.dst, edge.weight,
                           tag=edge.tag)
        return clone

    def _adopt(self, result: ScheduleResult) -> None:
        self._result = result

    # ------------------------------------------------------------------
    # validation helpers (the property suite leans on these)
    # ------------------------------------------------------------------

    def committed_report(self):
        """Validate the committed prefix: time- and power-validity of
        the current plan restricted to what actually matters — every
        separation among committed tasks and the profile under
        ``P_max``.

        Returns the :class:`~repro.core.validation.ValidationReport`
        of the full current schedule (the suffix is solver output and
        therefore valid; including it keeps the check honest).
        """
        if self._result is None:
            return check_time_valid(
                Schedule(self._graph.copy(), {}))
        return check_power_valid(
            self._result.schedule, self.config.p_max,
            baseline=self.problem().total_baseline)

    def __repr__(self) -> str:
        return (f"MissionSession({self.config.name!r}, now={self.now}, "
                f"admitted={len(self.admitted)}, "
                f"committed={len(self.spans)}, "
                f"rejected={len(self.rejected)})")
