"""Recorded arrival scripts: serialize, replay, derive from problems.

A *session script* is the offline artifact of an online mission — the
session configuration plus the ordered command stream (arrivals, clock
advances, faults, the final quiesce).  Scripts are what the ``session``
CLI verb replays, what the CI smoke job drives through a live server,
and what the differential suite uses to feed an offline problem into a
session one arrival at a time.

Wire shape: ``repro-session-script`` v1 (see ``docs/formats.md``); the
validation lives in :func:`repro.io.requests.session_script_from_dict`
so the CLI, server, and tests agree on one parser.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.task import ANCHOR_NAME
from ..errors import ReproError
from ..scheduling.base import SchedulerOptions
from .session import (SESSION_SCHEDULERS, MissionSession, SessionConfig,
                      apply_constraint, parse_constraint)

__all__ = [
    "SessionScript",
    "arrivals_from_problem",
    "load_script",
    "problem_from_script",
    "replay_script",
    "script_from_problem",
]

SCRIPT_FORMAT = "repro-session-script"
SCRIPT_VERSION = 1


@dataclass
class SessionScript:
    """A session configuration plus its ordered command stream."""

    p_max: float
    p_min: float = 0.0
    baseline: float = 0.0
    scheduler: str = "min_power"
    seed: int = 2001
    name: str = "mission"
    commands: "list[dict[str, Any]]" = field(default_factory=list)

    def config(self) -> SessionConfig:
        return SessionConfig(p_max=self.p_max, p_min=self.p_min,
                             baseline=self.baseline,
                             scheduler=self.scheduler,
                             options=SchedulerOptions(seed=self.seed),
                             name=self.name)

    def to_dict(self) -> "dict[str, Any]":
        return {
            "format": SCRIPT_FORMAT,
            "version": SCRIPT_VERSION,
            "session": {
                "p_max": self.p_max,
                "p_min": self.p_min,
                "baseline": self.baseline,
                "scheduler": self.scheduler,
                "seed": self.seed,
                "name": self.name,
            },
            "commands": [dict(c) for c in self.commands],
        }

    @classmethod
    def from_dict(cls, doc: "Mapping[str, Any]") -> "SessionScript":
        # One parser for everyone: the io layer validates, we adapt.
        from ..io.requests import RequestError, session_script_from_dict
        try:
            return session_script_from_dict(doc)
        except RequestError as exc:
            raise ReproError(f"bad session script: {exc.message}") \
                from exc


def load_script(path: "str | Path") -> SessionScript:
    """Read a ``repro-session-script`` v1 JSON file."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: not valid JSON: {exc}") from exc
    return SessionScript.from_dict(doc)


def replay_script(script: SessionScript) \
        -> "tuple[MissionSession, list[dict[str, Any]]]":
    """Run every command of ``script`` through a fresh local session.

    Returns the finished session and the full event journal (the same
    records a live server would have streamed as
    ``repro-session-event`` v1 lines).
    """
    session = MissionSession(script.config())
    for command in script.commands:
        session.apply(command)
    return session, list(session.events)


def problem_from_script(script: SessionScript,
                        admitted: "list[str] | None" = None) \
        -> SchedulingProblem:
    """Rebuild the offline problem a script's arrivals imply.

    With ``admitted`` the graph is restricted to those tasks — exactly
    the constraint set a live session holds after rejections, since a
    rejected arrival's tasks and edges were rolled back and an admitted
    arrival can only constrain already-admitted tasks.  This is what
    lets ``repro-schedule session --check --server`` run the power/time
    validators *client-side* against the starts a remote server
    reported (nominal durations only, so it is not applicable to
    scripts that inject faults).
    """
    keep = None if admitted is None else set(admitted)
    graph = ConstraintGraph(script.name)
    for command in script.commands:
        if command.get("event") != "arrival":
            continue
        task = command["task"]
        name = task["name"]
        if keep is not None and name not in keep:
            continue
        graph.new_task(name, duration=task["duration"],
                       power=task.get("power", 0.0),
                       resource=task.get("resource"))
        for record in command.get("constraints", ()):
            apply_constraint(graph, parse_constraint(name, record))
    return SchedulingProblem(graph=graph, p_max=script.p_max,
                             p_min=script.p_min,
                             baseline=script.baseline,
                             name=script.name)


def arrivals_from_problem(problem: SchedulingProblem,
                          order: "list[str] | None" = None,
                          quiesce: bool = True) \
        -> "list[dict[str, Any]]":
    """Decompose an offline problem into an arrival command stream.

    Each task of ``problem`` becomes one ``arrival`` command carrying
    every constraint edge whose *other* endpoint has already arrived —
    so replaying the commands in order rebuilds exactly the offline
    constraint graph, edge for edge.  Anchor edges travel as
    ``release`` (forward) / ``deadline`` (backward) records when they
    bind the arriving task, and min/max separations are emitted in the
    paper's user-facing orientation (``max`` with a positive window
    rather than a raw negative back edge).

    ``order`` defaults to graph insertion order; any permutation that
    is closed under "both endpoints present" still reconstructs the
    same graph, which is what the arrival-order property tests lean on.
    With ``quiesce`` (default) a final ``quiesce`` command is appended,
    making the stream a complete quiescence-theorem probe.
    """
    graph = problem.graph
    names = order if order is not None else graph.task_names()
    unknown = [n for n in names if n not in graph]
    if unknown:
        raise ReproError(f"order names unknown task(s) {unknown}")
    if sorted(names) != sorted(graph.task_names()):
        raise ReproError("order must be a permutation of the "
                         "problem's task names")
    commands: "list[dict[str, Any]]" = []
    arrived: "set[str]" = set()
    for name in names:
        task = graph.task(name)
        constraints: "list[dict[str, Any]]" = []
        for edge in graph.edges():
            endpoints = {edge.src, edge.dst} - {ANCHOR_NAME}
            if name not in endpoints:
                continue
            if not endpoints <= (arrived | {name}):
                continue
            if edge.src == ANCHOR_NAME:
                # endpoints == {edge.dst} == {name}: a release edge.
                constraints.append(
                    {"kind": "release", "time": edge.weight})
            elif edge.dst == ANCHOR_NAME:
                # endpoints == {edge.src} == {name}: a start deadline.
                constraints.append(
                    {"kind": "deadline", "time": -edge.weight})
            elif edge.weight >= 0:
                constraints.append(
                    {"kind": "min", "src": edge.src,
                     "dst": edge.dst, "sep": edge.weight})
            else:
                constraints.append(
                    {"kind": "max", "src": edge.dst,
                     "dst": edge.src, "sep": -edge.weight})
        record: "dict[str, Any]" = {"name": name,
                                    "duration": task.duration}
        if task.power:
            record["power"] = task.power
        if task.resource is not None:
            record["resource"] = task.resource
        commands.append({"event": "arrival", "task": record,
                         "constraints": constraints})
        arrived.add(name)
    if quiesce:
        commands.append({"event": "quiesce"})
    return commands


def script_from_problem(problem: SchedulingProblem,
                        scheduler: str = "min_power",
                        seed: int = 2001,
                        order: "list[str] | None" = None,
                        quiesce: bool = True) -> SessionScript:
    """A complete quiescence-probe script for an offline problem."""
    if scheduler not in SESSION_SCHEDULERS:
        raise ReproError(f"unknown scheduler {scheduler!r}")
    return SessionScript(
        p_max=problem.p_max, p_min=problem.p_min,
        baseline=problem.baseline, scheduler=scheduler, seed=seed,
        name=problem.name or "mission",
        commands=arrivals_from_problem(problem, order=order,
                                       quiesce=quiesce))
