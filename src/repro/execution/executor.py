"""Tick-level schedule executor.

Executes a statically-computed schedule against a (possibly
misbehaving) reality: actual task durations come from a
:class:`~repro.execution.faults.DurationModel`, the supply from a
:class:`~repro.power.supply.PowerSystem`, and the dispatcher follows
one of two policies:

* ``"static"`` — the embedded-classic time-triggered executive: each
  task is released exactly at its planned start time, period.  Under
  overruns this faithfully exposes the brittleness of static schedules:
  resource collisions, broken separations, and power spikes are
  *observed and recorded*, not silently repaired.
* ``"self_timed"`` — an event-driven executive: a task is dispatched at
  the earliest tick >= its planned start when its min separations
  (against *actual* start times), its resource, and the power headroom
  allow.  Overruns stretch the schedule instead of breaking it; max
  separations can still be violated (recorded) because no dispatcher
  can move the past.

The run produces an :class:`ExecutionResult`: the event trace, actual
spans, the realized power profile, the energy split against the supply,
and the violation list.  `repro.execution.replan` consumes a mid-run
snapshot to re-schedule the remainder — the runtime loop the paper's
Section 5.3 gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME
from ..errors import ReproError
from ..obs import OBS
from ..power.accounting import EnergySplit, split_energy_against_solar
from ..power.battery import BatteryDepletedError
from ..power.supply import PowerSystem
from .faults import DurationModel, ExactDurations
from .trace import (BATTERY_DEPLETED, POWER_SPIKE, RESOURCE_VIOLATION,
                    SEPARATION_VIOLATION, TASK_FINISHED, TASK_STARTED,
                    Trace)

__all__ = ["ExecutionResult", "ScheduleExecutor"]

_POLICIES = ("static", "self_timed")

#: Hard cap on simulated ticks (guards a dispatcher deadlock).
_MAX_TICKS = 1_000_000


@dataclass
class ExecutionResult:
    """Everything observed during one execution run."""

    policy: str
    trace: Trace
    spans: "dict[str, tuple[int, int]]"  # name -> [start, end)
    finished_at: int
    profile: PowerProfile
    energy: "EnergySplit | None"
    aborted: bool = False
    pending: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run completed with no violations."""
        return not self.aborted and not self.trace.violations() \
            and not self.pending

    def actual_schedule(self, graph: ConstraintGraph) -> Schedule:
        """The realized start times as a Schedule (durations may have
        differed from the plan; starts are what they were)."""
        return Schedule(graph, {name: span[0]
                                for name, span in self.spans.items()})

    def summary(self) -> str:
        state = "ok" if self.ok else (
            "aborted" if self.aborted
            else f"{len(self.trace.violations())} violation(s)")
        return (f"execution[{self.policy}]: finished at "
                f"{self.finished_at}s, {state}")


class ScheduleExecutor:
    """Run a planned schedule through simulated mission time."""

    def __init__(self, problem: SchedulingProblem, schedule: Schedule,
                 supply: "PowerSystem | None" = None,
                 durations: "DurationModel | None" = None,
                 policy: str = "static",
                 start_time: float = 0.0):
        if policy not in _POLICIES:
            raise ReproError(
                f"unknown dispatch policy {policy!r}; "
                f"pick from {_POLICIES}")
        self.problem = problem
        self.plan = schedule
        self.supply = supply
        self.durations = durations or ExactDurations()
        self.policy = policy
        self.start_time = start_time

    # ------------------------------------------------------------------

    def run(self, until: "int | None" = None) -> ExecutionResult:
        """Execute to completion (or to tick ``until`` for snapshots)."""
        with OBS.span("exec.run", policy=self.policy,
                      problem=self.problem.name) as run_span:
            result = self._run(until)
            run_span.set(finished_at=result.finished_at,
                         aborted=result.aborted,
                         violations=len(result.trace.violations()))
        return result

    def _run(self, until: "int | None" = None) -> ExecutionResult:
        graph = self.problem.graph
        trace = Trace()
        actual: "dict[str, int]" = {
            name: self.durations.actual_duration(graph.task(name))
            for name in self.plan}
        started: "dict[str, int]" = {}
        finished: "dict[str, int]" = {}
        aborted = False

        t = 0
        while len(finished) < len(actual) and not aborted:
            if until is not None and t >= until:
                break
            if t >= _MAX_TICKS:  # pragma: no cover - defensive
                raise ReproError("executor exceeded the tick cap")
            # completions first: a resource freed at t is usable at t
            for name, start in list(started.items()):
                if name not in finished and t >= start + actual[name]:
                    finished[name] = start + actual[name]
                    trace.record(finished[name], TASK_FINISHED, name)
            for name in self._dispatchable(graph, t, started, finished,
                                           actual):
                if self.policy == "self_timed" and not (
                        self._resource_free(graph, name, t, started,
                                            finished)
                        and self._power_headroom(graph, name, t,
                                                 started, finished)):
                    # a task dispatched earlier in this same tick took
                    # the resource or the headroom; try again next tick
                    continue
                started[name] = t
                trace.record(t, TASK_STARTED, name,
                             detail=f"planned {self.plan.start(name)}")
                if self.policy == "static":
                    self._check_static_conflicts(graph, trace, t, name,
                                                 started, finished)
            if not self._tick_power_ok(graph, trace, t, started,
                                       finished, actual):
                aborted = True
                break
            t += 1

        spans = {name: (start, start + actual[name])
                 for name, start in started.items()}
        finished_at = max((end for _, end in spans.values()), default=0)
        profile = self._realized_profile(graph, spans, finished_at)
        energy = None
        if self.supply is not None and profile.horizon > 0:
            energy = split_energy_against_solar(
                profile, self.supply.solar, start_time=self.start_time)
        pending = [name for name in actual
                   if name not in started
                   or started[name] + actual[name] > t]
        if until is None and not aborted:
            pending = [name for name in actual if name not in finished]
        return ExecutionResult(policy=self.policy, trace=trace,
                               spans=spans, finished_at=finished_at,
                               profile=profile, energy=energy,
                               aborted=aborted, pending=pending)

    # ------------------------------------------------------------------

    def _dispatchable(self, graph, t, started, finished, actual):
        """Tasks to dispatch at tick ``t`` under the policy."""
        out = []
        for name in self.plan:
            if name in started:
                continue
            planned = self.plan.start(name)
            if self.policy == "static":
                if t == planned:
                    out.append(name)
                continue
            # self-timed policy
            if t < planned:
                continue
            if not self._separations_met(graph, name, t, started):
                continue
            if not self._resource_free(graph, name, t, started,
                                       finished):
                continue
            if not self._power_headroom(graph, name, t, started,
                                        finished):
                continue
            out.append(name)
        return out

    def _separations_met(self, graph, name, t, started) -> bool:
        """Min separations against *actual* starts; releases included."""
        for edge in graph.in_edges(name):
            if edge.weight < 0:
                continue  # max separations cannot gate a dispatcher
            if edge.src == ANCHOR_NAME:
                if t < edge.weight:
                    return False
            elif edge.src not in started \
                    or t < started[edge.src] + edge.weight:
                return False
        return True

    def _resource_free(self, graph, name, t, started, finished) -> bool:
        resource = graph.task(name).resource
        if resource is None:
            return True
        for other, start in started.items():
            if other == name or graph.task(other).resource != resource:
                continue
            if other not in finished:
                return False
        return True

    def _power_headroom(self, graph, name, t, started, finished) -> bool:
        level = self.problem.total_baseline + graph.task(name).power
        for other, start in started.items():
            if other not in finished:
                level += graph.task(other).power
        p_max = self._p_max_at(t)
        return level <= p_max + PowerProfile.POWER_TOL

    def _p_max_at(self, t: int) -> float:
        if self.supply is not None:
            return self.supply.p_max(self.start_time + t)
        return self.problem.p_max

    # ------------------------------------------------------------------
    # static-policy violation monitors
    # ------------------------------------------------------------------

    def _check_static_conflicts(self, graph, trace, t, name, started,
                                finished) -> None:
        resource = graph.task(name).resource
        if resource is not None:
            for other in started:
                if other != name and other not in finished \
                        and graph.task(other).resource == resource:
                    trace.record(t, RESOURCE_VIOLATION, name,
                                 detail=f"overlaps {other} on "
                                        f"{resource}")
        for edge in graph.in_edges(name):
            if edge.weight < 0 or edge.src == ANCHOR_NAME:
                continue
            if edge.src not in started \
                    or t < started[edge.src] + edge.weight:
                trace.record(t, SEPARATION_VIOLATION, name,
                             detail=f"needs >= {edge.weight} after "
                                    f"{edge.src}")

    def _tick_power_ok(self, graph, trace, t, started, finished,
                       actual) -> bool:
        """Account this tick's draw; False aborts (battery dead)."""
        level = self.problem.total_baseline
        for name, start in started.items():
            if name not in finished and t < start + actual[name]:
                level += graph.task(name).power
        p_max = self._p_max_at(t)
        if level > p_max + PowerProfile.POWER_TOL:
            trace.record(t, POWER_SPIKE,
                         detail=f"{level:.1f} W > {p_max:.1f} W")
        if self.supply is not None:
            solar = self.supply.p_min(self.start_time + t)
            excess = max(level - solar, 0.0)
            if excess > 0:
                try:
                    draw = min(excess, self.supply.battery.max_power)
                    self.supply.battery.draw(draw, 1.0)
                except BatteryDepletedError:
                    trace.record(t, BATTERY_DEPLETED,
                                 detail=f"needed {excess:.1f} W")
                    return False
        return True

    def _realized_profile(self, graph, spans, finished_at) \
            -> PowerProfile:
        if finished_at == 0:
            return PowerProfile([],
                                baseline=self.problem.total_baseline)
        segments = []
        for t in range(finished_at):
            level = self.problem.total_baseline
            for name, (start, end) in spans.items():
                if start <= t < end:
                    level += graph.task(name).power
            segments.append((t, t + 1, level))
        return PowerProfile(segments,
                            baseline=self.problem.total_baseline)
