"""Execution traces: what actually happened, tick by tick.

The executor records a flat event stream — task dispatches and
completions, constraint violations observed at run time, supply events
— that tests and reports can query.  Events are plain frozen records;
the trace is ordered by time with stable intra-tick ordering.

When a :mod:`repro.obs` session is enabled, every recorded event is
mirrored as an ``exec.<kind>`` instant event on the currently-open span
and counted in the ``exec.events.<kind>`` metric, so mission
simulations and batch solves share one observability stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import OBS

__all__ = ["TraceEvent", "Trace",
           "TASK_STARTED", "TASK_FINISHED", "SEPARATION_VIOLATION",
           "RESOURCE_VIOLATION", "POWER_SPIKE", "BATTERY_DEPLETED",
           "REPLAN_TRIGGERED"]

#: Event kind: a task began executing.
TASK_STARTED = "task-started"
#: Event kind: a task finished executing.
TASK_FINISHED = "task-finished"
#: Event kind: a min/max separation constraint was violated.
SEPARATION_VIOLATION = "separation-violation"
#: Event kind: two tasks overlapped on one exclusive resource.
RESOURCE_VIOLATION = "resource-violation"
#: Event kind: instantaneous draw exceeded the power budget.
POWER_SPIKE = "power-spike"
#: Event kind: the battery ran out mid-run.
BATTERY_DEPLETED = "battery-depleted"
#: Event kind: the executor handed control back for a replan.
REPLAN_TRIGGERED = "replan-triggered"

#: Kinds that mark a run as unsuccessful.
VIOLATION_KINDS = frozenset({SEPARATION_VIOLATION, RESOURCE_VIOLATION,
                             POWER_SPIKE, BATTERY_DEPLETED})


@dataclass(frozen=True)
class TraceEvent:
    """One observed event."""

    time: int
    kind: str
    task: str = ""
    detail: str = ""

    def __repr__(self) -> str:
        task = f" {self.task}" if self.task else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"[t={self.time}] {self.kind}{task}{detail}"


@dataclass
class Trace:
    """An ordered event stream with query helpers."""

    events: "list[TraceEvent]" = field(default_factory=list)

    def record(self, tick: int, kind: str, task: str = "",
               detail: str = "") -> TraceEvent:
        event = TraceEvent(time=tick, kind=kind, task=task,
                           detail=detail)
        self.events.append(event)
        if OBS.enabled:
            OBS.event(f"exec.{kind}", tick=tick,
                      **({"task": task} if task else {}),
                      **({"detail": detail} if detail else {}))
            OBS.metrics.counter(f"exec.events.{kind}").inc()
        return event

    def of_kind(self, kind: str) -> "list[TraceEvent]":
        return [e for e in self.events if e.kind == kind]

    def for_task(self, task: str) -> "list[TraceEvent]":
        return [e for e in self.events if e.task == task]

    def violations(self) -> "list[TraceEvent]":
        return [e for e in self.events if e.kind in VIOLATION_KINDS]

    def first(self, kind: str) -> "TraceEvent | None":
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self) -> str:
        """Human-readable multi-line dump."""
        return "\n".join(repr(e) for e in self.events)
