"""Mid-mission replanning: re-schedule the remainder from a snapshot.

The paper's static schedules are meant to feed "a runtime scheduler
that schedules tasks according to the dynamically changing constraints
imposed by the environment".  When execution diverges from the plan —
a task overran, the solar supply changed — the right response is not to
keep replaying a stale table but to *re-solve from current state*:

1. freeze history — every started task is locked at its actual start
   time (with its remaining execution, if still running, protected by a
   release on its successors);
2. the future is released — every pending task gets
   ``sigma(v) >= now``;
3. the remainder is re-solved by the normal three-stage pipeline under
   the *current* power constraints.

The result is a full schedule (history + future) that is time-valid by
construction and power-valid from ``now`` on; past spikes are sunk
cost.
"""

from __future__ import annotations

from ..core.problem import SchedulingProblem
from ..errors import ReproError
from ..scheduling.base import ScheduleResult, SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler
from .executor import ExecutionResult

__all__ = ["replan"]


def replan(problem: SchedulingProblem, snapshot: ExecutionResult,
           now: int, p_max: "float | None" = None,
           p_min: "float | None" = None,
           options: "SchedulerOptions | None" = None,
           scheduler=None) -> ScheduleResult:
    """Re-schedule the tasks that have not started by ``now``.

    Parameters
    ----------
    problem:
        The original problem (source of the constraint graph).
    snapshot:
        An :class:`ExecutionResult` from
        ``ScheduleExecutor.run(until=now)`` — its spans carry the actual
        starts and (realized) durations of everything dispatched so far.
    now:
        Current mission tick; pending tasks may not start before it.
    p_max, p_min:
        Optionally updated power constraints (the environment may have
        changed — that is often why we replan).  Default: the
        problem's.
    scheduler:
        The solver for the remainder — anything with a
        ``solve(problem)`` method (e.g. a mission session's configured
        :class:`~repro.scheduling.max_power.MaxPowerScheduler`, so the
        replanned suffix comes from the same algorithm as every other
        solve of that session).  Default: the full
        :class:`~repro.scheduling.power_aware.PowerAwareScheduler`
        pipeline built from ``options``.

    Returns the pipeline result for the *whole* task set: frozen
    history plus re-planned future.
    """
    if now < 0:
        raise ReproError(f"now must be >= 0, got {now}")
    graph = problem.graph.copy()

    for name, (start, end) in snapshot.spans.items():
        # "frozen", not the default "lock": the max-power stage treats
        # its own "lock" pins as relaxable (spike repair lifts them,
        # compaction left-shifts them), but executed history must never
        # move — a distinct tag keeps it out of both passes.
        graph.lock_start(name, start, tag="frozen")
        if end > now:
            # still running: its realized duration may exceed the
            # nominal one; push successors past the *actual* end
            nominal = graph.task(name).duration
            overrun = (end - start) - nominal
            if overrun > 0:
                for edge in graph.out_edges(name):
                    if edge.weight >= nominal \
                            and edge.dst != graph.anchor.name \
                            and edge.dst not in snapshot.spans:
                        # end-anchored separations stretch with the
                        # overrun — but only toward tasks that have not
                        # themselves started (history cannot be moved)
                        graph.add_edge(name, edge.dst,
                                       edge.weight + overrun,
                                       tag="replan")
    for name in problem.graph.task_names():
        if name not in snapshot.spans:
            graph.add_release(name, now, tag="replan")

    scaled = SchedulingProblem(
        graph=graph,
        p_max=problem.p_max if p_max is None else p_max,
        p_min=problem.p_min if p_min is None else p_min,
        baseline=problem.baseline,
        name=f"{problem.name}@t={now}",
        meta=dict(problem.meta))
    solver = scheduler if scheduler is not None \
        else PowerAwareScheduler(options)
    result = solver.solve(scaled)
    result.extra["replanned_at"] = now
    result.extra["frozen"] = sorted(snapshot.spans)
    return result
