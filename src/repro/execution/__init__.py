"""Runtime execution of static schedules.

Mission-critical embedded systems do not stop at a pretty Gantt chart:
the static schedule is executed by a dispatcher against a reality of
task overruns and supply faults.  This package provides a tick-level
executor with two dispatch policies (time-triggered ``"static"`` and
event-driven ``"self_timed"``), seeded jitter/fault models, violation
monitoring, and snapshot-based replanning — the runtime loop around the
paper's static scheduler.
"""

from .executor import ExecutionResult, ScheduleExecutor
from .faults import (DurationModel, ExactDurations, FixedOverruns,
                     SolarDropout, UniformJitter)
from .replan import replan
from .trace import (BATTERY_DEPLETED, POWER_SPIKE, RESOURCE_VIOLATION,
                    SEPARATION_VIOLATION, TASK_FINISHED, TASK_STARTED,
                    Trace, TraceEvent)

__all__ = [
    "BATTERY_DEPLETED",
    "DurationModel",
    "ExactDurations",
    "ExecutionResult",
    "FixedOverruns",
    "POWER_SPIKE",
    "RESOURCE_VIOLATION",
    "SEPARATION_VIOLATION",
    "ScheduleExecutor",
    "SolarDropout",
    "TASK_FINISHED",
    "TASK_STARTED",
    "Trace",
    "TraceEvent",
    "UniformJitter",
    "replan",
]
