"""Runtime fault and jitter models.

Static schedules are computed from nominal durations and supply
levels; mission reality differs.  These models inject the differences
the executor must survive:

* :class:`ExactDurations` — the nominal case (executor replays the
  schedule bit-exactly);
* :class:`UniformJitter` — every task's actual duration drawn uniformly
  within ``+/- fraction`` of nominal (at least 1 tick);
* :class:`FixedOverruns` — named tasks overrun by fixed amounts (the
  targeted what-if a designer actually asks);
* :class:`SolarDropout` — the supply-side fault: solar output forced to
  zero during an interval (dust devil over the panel), wrapped around
  any base solar model.

All randomness is seeded; models are reusable across runs.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..core.task import Task
from ..errors import ReproError
from ..power.solar import SolarModel

__all__ = ["DurationModel", "ExactDurations", "UniformJitter",
           "FixedOverruns", "SolarDropout"]


class DurationModel:
    """Interface: the actual duration a task exhibits at run time."""

    def actual_duration(self, task: Task) -> int:
        raise NotImplementedError

    def reset(self, seed: int) -> None:
        """Re-seed before a run (default: stateless)."""


class ExactDurations(DurationModel):
    """Nominal durations: execution replays the plan."""

    def actual_duration(self, task: Task) -> int:
        return task.duration


class UniformJitter(DurationModel):
    """Uniform multiplicative jitter, deterministic per (seed, task).

    ``fraction = 0.2`` lets a 10 s task run anywhere in [8, 12] s.
    Zero-duration milestones never jitter.
    """

    def __init__(self, fraction: float, seed: int = 0):
        if not 0 <= fraction <= 1:
            raise ReproError(
                f"jitter fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.seed = seed

    def reset(self, seed: int) -> None:
        self.seed = seed

    def actual_duration(self, task: Task) -> int:
        if task.duration == 0 or self.fraction == 0:
            return task.duration
        rng = random.Random((self.seed, task.name).__hash__())
        spread = max(1, round(task.duration * self.fraction))
        actual = task.duration + rng.randint(-spread, spread)
        return max(1, actual)


class FixedOverruns(DurationModel):
    """Named tasks overrun by fixed extra ticks; others are nominal."""

    def __init__(self, overruns: "Mapping[str, int]"):
        for name, extra in overruns.items():
            if extra < 0:
                raise ReproError(
                    f"overrun for {name!r} must be >= 0, got {extra}")
        self.overruns = dict(overruns)

    def actual_duration(self, task: Task) -> int:
        return task.duration + self.overruns.get(task.name, 0)


class SolarDropout(SolarModel):
    """A solar model with a forced-zero outage window."""

    def __init__(self, base: SolarModel, start: float, end: float):
        if end <= start:
            raise ReproError(
                f"dropout window [{start}, {end}) is empty")
        self.base = base
        self.start = start
        self.end = end

    def power(self, t: float) -> float:
        if self.start <= t < self.end:
            return 0.0
        return self.base.power(t)

    def breakpoints(self, t0: float, t1: float) -> "list[float]":
        points = set(self.base.breakpoints(t0, t1))
        for edge in (self.start, self.end):
            if t0 < edge < t1:
                points.add(edge)
        return sorted(points)
