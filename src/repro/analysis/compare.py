"""Scheduler shoot-outs: run several schedulers on the same problems.

Backs the scalability and ablation benchmarks: each scheduler solves
each problem, and the result rows capture quality (finish time, energy
cost, utilization), robustness (success rate), and effort (scheduler
work counters).  Failures are recorded, not raised — a heuristic that
gives up on an instance is a data point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..core.problem import SchedulingProblem
from ..errors import ReproError, SchedulingFailure
from ..scheduling.base import ScheduleResult

__all__ = ["CompareOutcome", "compare_schedulers", "summarize_outcomes"]

#: A scheduler entry: name -> callable(problem) -> ScheduleResult.
SchedulerMap = Mapping[str, Callable[[SchedulingProblem], ScheduleResult]]


@dataclass(frozen=True)
class CompareOutcome:
    """One (scheduler, problem) cell of the comparison matrix."""

    scheduler: str
    problem: str
    success: bool
    seconds: float
    finish_time: "int | None" = None
    energy_cost: "float | None" = None
    utilization: "float | None" = None
    error: str = ""

    def row(self) -> "dict[str, object]":
        return {
            "scheduler": self.scheduler,
            "problem": self.problem,
            "ok": self.success,
            "tau_s": self.finish_time,
            "Ec_J": self.energy_cost,
            "rho_pct": (None if self.utilization is None
                        else 100.0 * self.utilization),
            "seconds": self.seconds,
        }


def compare_schedulers(schedulers: SchedulerMap,
                       problems: "Iterable[SchedulingProblem]") \
        -> "list[CompareOutcome]":
    """Run every scheduler on every problem; never raises on failures."""
    outcomes = []
    for problem in problems:
        for name, solver in schedulers.items():
            started = time.perf_counter()
            try:
                result = solver(problem)
            except (SchedulingFailure, ReproError) as exc:
                outcomes.append(CompareOutcome(
                    scheduler=name, problem=problem.name,
                    success=False,
                    seconds=time.perf_counter() - started,
                    error=str(exc)))
                continue
            outcomes.append(CompareOutcome(
                scheduler=name, problem=problem.name, success=True,
                seconds=time.perf_counter() - started,
                finish_time=result.finish_time,
                energy_cost=result.energy_cost,
                utilization=result.utilization))
    return outcomes


def summarize_outcomes(outcomes: "list[CompareOutcome]") \
        -> "list[dict[str, object]]":
    """Aggregate per scheduler: success rate, mean quality, mean time."""
    by_name: "dict[str, list[CompareOutcome]]" = {}
    for outcome in outcomes:
        by_name.setdefault(outcome.scheduler, []).append(outcome)
    rows = []
    for name, cells in by_name.items():
        wins = [c for c in cells if c.success]
        row: "dict[str, object]" = {
            "scheduler": name,
            "solved": f"{len(wins)}/{len(cells)}",
            "mean_s": (sum(c.seconds for c in cells) / len(cells)),
        }
        if wins:
            row["mean_tau_s"] = sum(c.finish_time for c in wins) \
                / len(wins)
            row["mean_Ec_J"] = sum(c.energy_cost for c in wins) \
                / len(wins)
            row["mean_rho_pct"] = 100.0 * sum(
                c.utilization for c in wins) / len(wins)
        rows.append(row)
    return rows
