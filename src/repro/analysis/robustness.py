"""Power-uncertainty analysis: (min, typical, max) task powers.

Section 4.1 of the paper assumes a single exact power value per task
but notes that "in practice, the power consumption can be either in the
form of (min, typical, max), or a function over time.  Since our
formulation can be extended to handling these cases, we will assume a
single value to simplify the discussion."  This module provides that
extension:

* :class:`PowerTriple` — a per-task (min, typical, max) power spec;
* :func:`corner_problems` — the three corner instantiations of a
  problem whose tasks carry triples (the rover's Table 2 *is* such a
  triple table, indexed by temperature);
* :func:`robust_schedule` — schedule on one corner, then *verify* the
  schedule stays power-valid at the pessimistic corner, re-solving at
  the pessimistic corner when it does not.  Returns the schedule plus
  the Ec/rho range it spans across corners — the information a
  mission planner actually needs.

Task triples are carried in ``Task.meta["power_triple"]`` so the core
model stays single-valued (exactly the paper's simplification), and
the corners are ordinary problems solvable by any scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..errors import ReproError
from ..scheduling.base import SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler

__all__ = ["PowerTriple", "attach_triples", "corner_problems",
           "RobustResult", "robust_schedule",
           "MonteCarloReport", "monte_carlo_robustness"]

_CORNERS = ("min", "typical", "max")


@dataclass(frozen=True)
class PowerTriple:
    """A (min, typical, max) power specification in watts."""

    minimum: float
    typical: float
    maximum: float

    def __post_init__(self) -> None:
        if not 0 <= self.minimum <= self.typical <= self.maximum:
            raise ReproError(
                f"power triple must satisfy 0 <= min <= typ <= max, "
                f"got ({self.minimum}, {self.typical}, {self.maximum})")

    def at(self, corner: str) -> float:
        """The power value at a named corner."""
        if corner == "min":
            return self.minimum
        if corner == "typical":
            return self.typical
        if corner == "max":
            return self.maximum
        raise ReproError(
            f"unknown corner {corner!r}; pick from {_CORNERS}")


def attach_triples(graph: ConstraintGraph,
                   triples: "dict[str, PowerTriple]") -> ConstraintGraph:
    """A copy of ``graph`` whose tasks carry power triples.

    The tasks' single-value power is set to the *typical* corner (the
    paper's simplification); the triple rides along in task metadata.
    Tasks not named in ``triples`` keep their existing power as a
    degenerate triple.
    """
    from ..core.task import Task
    clone = ConstraintGraph(graph.name + "-triples")
    for task in graph.tasks():
        triple = triples.get(task.name,
                             PowerTriple(task.power, task.power,
                                         task.power))
        meta = dict(task.meta)
        meta["power_triple"] = triple
        clone.add_task(Task(name=task.name, duration=task.duration,
                            power=triple.typical, resource=task.resource,
                            meta=meta))
    for edge in graph.edges():
        clone.add_edge(edge.src, edge.dst, edge.weight, tag=edge.tag)
    return clone


def corner_problems(problem: SchedulingProblem) \
        -> "dict[str, SchedulingProblem]":
    """The min/typical/max corner instantiations of a triple problem.

    Tasks without a ``power_triple`` annotation keep their power at
    every corner.
    """
    from ..core.task import Task
    corners = {}
    for corner in _CORNERS:
        graph = ConstraintGraph(f"{problem.graph.name}-{corner}")
        for task in problem.graph.tasks():
            triple = task.meta.get("power_triple")
            power = triple.at(corner) if isinstance(triple, PowerTriple) \
                else task.power
            graph.add_task(Task(
                name=task.name, duration=task.duration, power=power,
                resource=task.resource, meta=dict(task.meta)))
        for edge in problem.graph.edges():
            graph.add_edge(edge.src, edge.dst, edge.weight, tag=edge.tag)
        corners[corner] = SchedulingProblem(
            graph=graph, p_max=problem.p_max, p_min=problem.p_min,
            baseline=problem.baseline,
            name=f"{problem.name}-{corner}",
            meta=dict(problem.meta))
    return corners


@dataclass
class RobustResult:
    """A schedule with its behaviour across the power corners."""

    schedule: Schedule
    planned_corner: str
    valid_at_max: bool
    finish_time: int
    energy_cost_range: "tuple[float, float]"
    utilization_range: "tuple[float, float]"
    peak_range: "tuple[float, float]"

    def summary(self) -> str:
        lo_ec, hi_ec = self.energy_cost_range
        return (f"robust schedule (planned at {self.planned_corner}): "
                f"tau={self.finish_time}s, Ec in "
                f"[{lo_ec:.1f}, {hi_ec:.1f}] J, "
                f"{'valid' if self.valid_at_max else 'INVALID'} at the "
                f"max-power corner")


def robust_schedule(problem: SchedulingProblem,
                    options: "SchedulerOptions | None" = None,
                    plan_corner: str = "typical") -> RobustResult:
    """Schedule at one corner; guarantee validity at the max corner.

    The schedule is computed on the ``plan_corner`` powers.  If its
    profile exceeds ``P_max`` under the pessimistic (max) powers — the
    risk the paper's DVS-critique warns about — the problem is re-solved
    directly at the max corner, whose start times remain valid at every
    other corner (timing does not depend on power; the profile only
    shrinks as powers shrink).  The returned ranges span all corners.
    """
    corners = corner_problems(problem)
    if plan_corner not in corners:
        raise ReproError(
            f"unknown corner {plan_corner!r}; pick from {_CORNERS}")
    scheduler = PowerAwareScheduler(options)
    result = scheduler.solve(corners[plan_corner])
    schedule = result.schedule
    planned = plan_corner

    def profile_at(corner: str) -> PowerProfile:
        corner_schedule = Schedule(corners[corner].graph,
                                   schedule.as_dict())
        return PowerProfile.from_schedule(
            corner_schedule, baseline=problem.baseline)

    if not profile_at("max").is_power_valid(problem.p_max):
        result = scheduler.solve(corners["max"])
        schedule = result.schedule
        planned = "max"

    costs, utils, peaks = [], [], []
    for corner in _CORNERS:
        profile = profile_at(corner)
        costs.append(profile.energy_above(problem.p_min))
        horizon = profile.horizon
        if problem.p_min > 0 and horizon > 0:
            utils.append(profile.energy_capped(problem.p_min)
                         / (problem.p_min * horizon))
        else:
            utils.append(1.0)
        peaks.append(profile.peak())

    return RobustResult(
        schedule=schedule,
        planned_corner=planned,
        valid_at_max=profile_at("max").is_power_valid(problem.p_max),
        finish_time=schedule.makespan,
        energy_cost_range=(min(costs), max(costs)),
        utilization_range=(min(utils), max(utils)),
        peak_range=(min(peaks), max(peaks)),
    )


# ----------------------------------------------------------------------
# Monte Carlo power-uncertainty trials
# ----------------------------------------------------------------------

@dataclass
class MonteCarloReport:
    """Distributional view of a problem under sampled task powers."""

    trials: int
    feasible: int
    finish_times: "list[int]"
    energy_costs: "list[float]"
    utilizations: "list[float]"

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.trials if self.trials else 0.0

    def finish_range(self) -> "tuple[int, int] | None":
        if not self.finish_times:
            return None
        return min(self.finish_times), max(self.finish_times)

    def energy_range(self) -> "tuple[float, float] | None":
        if not self.energy_costs:
            return None
        return min(self.energy_costs), max(self.energy_costs)

    def summary(self) -> str:
        taus = self.finish_range()
        return (f"{self.feasible}/{self.trials} trials feasible"
                + (f", tau in [{taus[0]}, {taus[1]}] s"
                   if taus else ""))


def _perturbed_problem(problem: SchedulingProblem, rng: random.Random,
                       rel_sigma: float,
                       trial: int) -> SchedulingProblem:
    """One trial instantiation with sampled task powers.

    Tasks carrying a ``power_triple`` draw uniformly inside their
    (min, max) band; others scale their nominal power by a uniform
    ``1 ± rel_sigma`` factor.
    """
    from ..core.task import Task
    graph = ConstraintGraph(f"{problem.graph.name}-mc{trial}")
    for task in problem.graph.tasks():
        triple = task.meta.get("power_triple")
        if isinstance(triple, PowerTriple):
            power = rng.uniform(triple.minimum, triple.maximum)
        else:
            power = task.power * rng.uniform(1.0 - rel_sigma,
                                             1.0 + rel_sigma)
        graph.add_task(Task(name=task.name, duration=task.duration,
                            power=max(0.0, power),
                            resource=task.resource,
                            meta=dict(task.meta)))
    for edge in problem.graph.edges():
        graph.add_edge(edge.src, edge.dst, edge.weight, tag=edge.tag)
    return SchedulingProblem(
        graph=graph, p_max=problem.p_max, p_min=problem.p_min,
        baseline=problem.baseline, name=f"{problem.name}-mc{trial}",
        meta=dict(problem.meta))


def monte_carlo_robustness(problem: SchedulingProblem,
                           trials: int = 32,
                           rel_sigma: float = 0.1,
                           options: "SchedulerOptions | None" = None,
                           runner=None,
                           base_seed: int = 2001) -> MonteCarloReport:
    """Solve ``trials`` power-sampled instantiations of a problem.

    Every trial is an independent solve job: with a
    :class:`~repro.engine.runner.BatchRunner` the trials fan out across
    worker processes; without one they run serially through the same
    job machinery, so the report is identical either way.  Trial
    randomness is seeded per trial index from ``base_seed`` — rerunning
    the experiment reproduces the exact sample set.
    """
    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials}")
    from ..engine.jobs import SolveJob, derive_seed
    from ..engine.runner import BatchRunner
    jobs = []
    for trial in range(trials):
        rng = random.Random(derive_seed(base_seed, trial))
        jobs.append(SolveJob(
            problem=_perturbed_problem(problem, rng, rel_sigma, trial),
            kind="sweep_point", options=options))
    runner = runner or BatchRunner()
    points = runner.run_values(jobs)

    feasible = [p for p in points
                if p is not None and p.feasible]
    return MonteCarloReport(
        trials=trials,
        feasible=len(feasible),
        finish_times=[p.finish_time for p in feasible],
        energy_costs=[p.energy_cost for p in feasible],
        utilizations=[p.utilization for p in feasible])
