"""Analytic lower bounds on the finish time.

The exhaustive scheduler certifies optimality only on tiny instances;
for everything larger, cheap lower bounds calibrate how good a
heuristic schedule can possibly be.  Three classical bounds apply to
the paper's model, each computable in linear-ish time:

* **critical path** — the ASAP finish time of the constraint graph with
  resources and power ignored (longest chain of separations);
* **resource load** — for each resource, its tasks must serialize, so
  ``tau >= earliest release + sum of durations`` on that resource;
* **energy over headroom** — the profile can never exceed
  ``P_max``, so all task energy must fit under the
  ``(P_max - baseline)`` ceiling: ``tau >= ceil(sum d*p / headroom)``.

``lower_bound`` is the max of the three; a schedule whose makespan
equals it is provably makespan-optimal — no search needed.  The
scalability benchmark reports the pipeline's gap to this bound on
instances far beyond the exhaustive scheduler's reach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..errors import ReproError

__all__ = ["MakespanBounds", "makespan_bounds", "lower_bound"]


@dataclass(frozen=True)
class MakespanBounds:
    """The individual bounds and their maximum."""

    critical_path: int
    resource_load: int
    energy_over_headroom: int

    @property
    def best(self) -> int:
        return max(self.critical_path, self.resource_load,
                   self.energy_over_headroom)

    def binding(self) -> str:
        """Which bound is tight (ties go to the structural ones)."""
        if self.critical_path == self.best:
            return "critical-path"
        if self.resource_load == self.best:
            return "resource-load"
        return "energy-over-headroom"

    def row(self) -> "dict[str, int | str]":
        return {"critical_path_s": self.critical_path,
                "resource_load_s": self.resource_load,
                "energy_bound_s": self.energy_over_headroom,
                "lower_bound_s": self.best,
                "binding": self.binding()}


def makespan_bounds(problem: SchedulingProblem) -> MakespanBounds:
    """Compute all three lower bounds for a problem."""
    graph = problem.graph
    dist = longest_paths(graph).distance

    critical = max((dist[t.name] + t.duration for t in graph.tasks()),
                   default=0)

    resource_load = 0
    for resource in graph.resources.names:
        tasks = graph.tasks_on(resource)
        if not tasks:
            continue
        release = min(dist[t.name] for t in tasks)
        load = sum(t.duration for t in tasks)
        resource_load = max(resource_load, release + load)

    headroom = problem.headroom()
    total_energy = sum(t.duration * t.power for t in graph.tasks())
    if total_energy <= 0:
        energy_bound = 0
    elif headroom <= 0:
        raise ReproError(
            f"no power headroom ({headroom:g} W) — every schedule is "
            "power-infeasible")
    else:
        energy_bound = math.ceil(total_energy / headroom - 1e-9)

    return MakespanBounds(critical_path=critical,
                          resource_load=resource_load,
                          energy_over_headroom=energy_bound)


def lower_bound(problem: SchedulingProblem) -> int:
    """The best (largest) of the three makespan lower bounds."""
    return makespan_bounds(problem).best
