"""Schedule diffs: how one schedule evolved into another.

The paper narrates its algorithms as schedule *transformations* —
"tasks h and f are delayed to remove the power spike", "a better
schedule that improves on the valid schedule" — and a designer
iterating in the IMPACCT tool needs the same story for their own runs:
which tasks moved, by how much, and what it bought.

:func:`diff_schedules` produces per-task movement records plus the
metric deltas under a given (P_max, P_min); :func:`diff_results` wraps
two scheduler results directly.  Output renders via the usual report
tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import evaluate
from ..core.schedule import Schedule
from ..errors import ReproError
from ..scheduling.base import ScheduleResult

__all__ = ["TaskMove", "ScheduleDiff", "diff_schedules", "diff_results"]


@dataclass(frozen=True)
class TaskMove:
    """One task whose start time changed."""

    task: str
    before: int
    after: int

    @property
    def delta(self) -> int:
        return self.after - self.before

    def row(self) -> "dict[str, object]":
        return {"task": self.task, "before_s": self.before,
                "after_s": self.after,
                "delta_s": f"{self.delta:+d}"}


@dataclass
class ScheduleDiff:
    """Movement set + metric deltas between two schedules."""

    moves: "list[TaskMove]"
    metrics_before: "dict[str, float]"
    metrics_after: "dict[str, float]"

    @property
    def moved_tasks(self) -> "list[str]":
        return [m.task for m in self.moves]

    @property
    def unchanged(self) -> bool:
        return not self.moves

    def metric_delta(self, key: str) -> float:
        return self.metrics_after[key] - self.metrics_before[key]

    def summary(self) -> str:
        if self.unchanged:
            return "schedules are identical"
        names = ", ".join(self.moved_tasks)
        dtau = self.metric_delta("tau_s")
        dcost = self.metric_delta("energy_cost_J")
        drho = self.metric_delta("utilization_pct")
        return (f"{len(self.moves)} task(s) moved ({names}): "
                f"tau {dtau:+g} s, Ec {dcost:+.1f} J, "
                f"rho {drho:+.1f} pp")

    def rows(self) -> "list[dict[str, object]]":
        """Per-move report rows (for format_table)."""
        return [m.row() for m in self.moves]


def diff_schedules(before: Schedule, after: Schedule, p_max: float,
                   p_min: float, baseline: float = 0.0) -> ScheduleDiff:
    """Diff two schedules of the same task set."""
    if set(iter(before)) != set(iter(after)):
        raise ReproError(
            "schedules cover different task sets and cannot be diffed")
    moves = [TaskMove(task=name, before=b, after=a)
             for name, b, a in sorted(before.differences(after))]
    metrics_before = evaluate(before, p_max, p_min,
                              baseline=baseline).row()
    metrics_after = evaluate(after, p_max, p_min,
                             baseline=baseline).row()
    return ScheduleDiff(moves=moves, metrics_before=metrics_before,
                        metrics_after=metrics_after)


def diff_results(before: ScheduleResult,
                 after: ScheduleResult) -> ScheduleDiff:
    """Diff two scheduler results (constraints taken from ``after``)."""
    problem = after.problem
    return diff_schedules(before.schedule, after.schedule,
                          p_max=problem.p_max, p_min=problem.p_min,
                          baseline=problem.baseline)
