"""Pareto-front exploration of the performance/energy plane.

The power-aware design problem is inherently bi-objective: finish time
``tau`` against battery energy ``Ec``.  The paper explores three
hand-picked points (best/typical/worst budgets); a design tool should
chart the whole front.  This module:

* runs a set of labelled scheduler configurations (different options,
  different schedulers, different power constraints) on one workload,
* extracts the non-dominated ``(tau, Ec)`` points,
* renders the plane as a standalone SVG scatter (dominated points
  grey, the front connected).

The front is the designer's menu: every point on it is the cheapest
schedule at its speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..core.problem import SchedulingProblem
from ..errors import ReproError, SchedulingFailure
from ..scheduling.base import ScheduleResult

__all__ = ["DesignPoint", "explore", "pareto_front",
           "render_pareto_svg", "write_pareto_svg"]

#: A labelled scheduler configuration.
Solver = Callable[[SchedulingProblem], ScheduleResult]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration in the (tau, Ec) plane."""

    label: str
    finish_time: int
    energy_cost: float
    utilization: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Weakly better on both axes, strictly on one."""
        if self.finish_time > other.finish_time \
                or self.energy_cost > other.energy_cost + 1e-9:
            return False
        return self.finish_time < other.finish_time \
            or self.energy_cost < other.energy_cost - 1e-9

    def row(self) -> "dict[str, object]":
        return {"config": self.label, "tau_s": self.finish_time,
                "Ec_J": round(self.energy_cost, 1),
                "rho_pct": round(100 * self.utilization, 1)}


def explore(problem: SchedulingProblem,
            solvers: "Mapping[str, Solver]") -> "list[DesignPoint]":
    """Evaluate every configuration; failures are skipped silently
    (an infeasible configuration is simply not a design point)."""
    points = []
    for label, solver in solvers.items():
        try:
            result = solver(problem)
        except (SchedulingFailure, ReproError):
            continue
        points.append(DesignPoint(
            label=label, finish_time=result.finish_time,
            energy_cost=result.energy_cost,
            utilization=result.utilization))
    return points


def pareto_front(points: "list[DesignPoint]") -> "list[DesignPoint]":
    """The non-dominated subset, sorted by finish time."""
    front = [p for p in points
             if not any(q.dominates(p) for q in points)]
    # de-duplicate identical coordinates, keep first label
    seen: "set[tuple[int, float]]" = set()
    unique = []
    for p in sorted(front, key=lambda p: (p.finish_time,
                                          p.energy_cost)):
        coord = (p.finish_time, round(p.energy_cost, 6))
        if coord not in seen:
            seen.add(coord)
            unique.append(p)
    return unique


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

_W, _H, _M = 460, 320, 54


def render_pareto_svg(points: "list[DesignPoint]",
                      title: str = "Design space") -> str:
    """The (tau, Ec) plane as a standalone SVG scatter."""
    from xml.sax.saxutils import escape

    if not points:
        raise ReproError("no design points to plot")
    front = set(id(p) for p in pareto_front(points))
    max_tau = max(p.finish_time for p in points) * 1.1 + 1
    max_ec = max(p.energy_cost for p in points) * 1.1 + 1

    def x_of(tau: float) -> float:
        return _M + tau / max_tau * (_W - 2 * _M)

    def y_of(ec: float) -> float:
        return _H - _M - ec / max_ec * (_H - 2 * _M)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" font-family="sans-serif" font-size="11">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_M}" y="20" font-size="14" font-weight="bold">'
        f'{escape(title)}</text>',
        f'<line x1="{_M}" y1="{_H - _M}" x2="{_W - _M}" '
        f'y2="{_H - _M}" stroke="#333"/>',
        f'<line x1="{_M}" y1="{_M}" x2="{_M}" y2="{_H - _M}" '
        'stroke="#333"/>',
        f'<text x="{_W // 2}" y="{_H - 12}">finish time tau (s)'
        '</text>',
        f'<text x="12" y="{_H // 2}" transform="rotate(-90 12 '
        f'{_H // 2})">energy cost Ec (J)</text>',
    ]
    ordered_front = pareto_front(points)
    if len(ordered_front) > 1:
        path = " ".join(
            f"{x_of(p.finish_time):.1f},{y_of(p.energy_cost):.1f}"
            for p in ordered_front)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="#4c78a8" '
            'stroke-width="1.5" stroke-dasharray="4,3"/>')
    for p in points:
        on_front = id(p) in front
        fill = "#4c78a8" if on_front else "#bbb"
        r = 5 if on_front else 3.5
        cx, cy = x_of(p.finish_time), y_of(p.energy_cost)
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r}" '
            f'fill="{fill}"><title>{escape(p.label)}: '
            f'tau={p.finish_time}s Ec={p.energy_cost:.1f}J</title>'
            '</circle>')
        if on_front:
            parts.append(
                f'<text x="{cx + 7:.1f}" y="{cy - 5:.1f}" '
                f'fill="#333" font-size="10">{escape(p.label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_pareto_svg(points: "list[DesignPoint]", path: str,
                     title: str = "Design space") -> str:
    """Render and write the scatter; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_pareto_svg(points, title=title))
    return path
