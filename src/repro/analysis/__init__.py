"""Experiment plumbing: sweeps, scheduler comparisons, report tables."""

from .bounds import MakespanBounds, lower_bound, makespan_bounds
from .compare import CompareOutcome, compare_schedulers, summarize_outcomes
from .diff import ScheduleDiff, TaskMove, diff_results, diff_schedules
from .pareto import (DesignPoint, explore, pareto_front,
                     render_pareto_svg, write_pareto_svg)
from .report import format_cell, format_markdown_table, format_table
from .robustness import (MonteCarloReport, PowerTriple, RobustResult,
                         attach_triples, corner_problems,
                         monte_carlo_robustness, robust_schedule)
from .sweep import (SweepPoint, knee_point, sweep_grid, sweep_p_max,
                    sweep_p_min)

__all__ = [
    "CompareOutcome",
    "DesignPoint",
    "MakespanBounds",
    "MonteCarloReport",
    "PowerTriple",
    "RobustResult",
    "ScheduleDiff",
    "SweepPoint",
    "TaskMove",
    "attach_triples",
    "compare_schedulers",
    "corner_problems",
    "diff_results",
    "diff_schedules",
    "explore",
    "pareto_front",
    "render_pareto_svg",
    "write_pareto_svg",
    "format_cell",
    "format_markdown_table",
    "format_table",
    "knee_point",
    "lower_bound",
    "makespan_bounds",
    "monte_carlo_robustness",
    "robust_schedule",
    "summarize_outcomes",
    "sweep_grid",
    "sweep_p_max",
    "sweep_p_min",
]
