"""Design-space exploration: sweeps over the power-constraint plane.

The whole point of the IMPACCT tooling is "to enable the exploration of
many more points in the design space".  This module automates the
exploration the paper does by hand for three cases: solve the same
workload across a grid of ``(P_max, P_min)`` values and report how
finish time, energy cost, and utilization trade off — including finding
the *power-performance knee* (smallest budget achieving the best finish
time) and the validity ranges for the runtime scheduler.

Every sweep accepts an optional ``runner`` — a
:class:`~repro.engine.runner.BatchRunner` — which executes the points
through the batch engine instead of the in-line serial loop: worker
processes solve points concurrently, duplicate points (the clamped
``p_min`` corners a grid produces) are solved once via the canonical
problem-hash cache, and the run emits a structured JSON trace.  Results
are identical either way; the runner only changes how fast (and how
observably) they arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.problem import SchedulingProblem
from ..errors import SchedulingFailure
from ..scheduling.base import ScheduleResult, SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler

__all__ = ["SweepPoint", "sweep_p_max", "sweep_p_min", "sweep_grid",
           "knee_point"]


@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a sweep."""

    p_max: float
    p_min: float
    feasible: bool
    finish_time: "int | None" = None
    energy_cost: "float | None" = None
    utilization: "float | None" = None
    peak_power: "float | None" = None

    def row(self) -> "dict[str, object]":
        """A report-table row."""
        return {
            "P_max_W": self.p_max,
            "P_min_W": self.p_min,
            "feasible": self.feasible,
            "tau_s": self.finish_time,
            "Ec_J": self.energy_cost,
            "rho_pct": (None if self.utilization is None
                        else 100.0 * self.utilization),
            "peak_W": self.peak_power,
        }


def _solve_point(problem: SchedulingProblem, p_max: float, p_min: float,
                 options: "SchedulerOptions | None") -> SweepPoint:
    scaled = problem.with_power_constraints(p_max=p_max, p_min=p_min)
    try:
        result: ScheduleResult = PowerAwareScheduler(options).solve(scaled)
    except SchedulingFailure:
        return SweepPoint(p_max=p_max, p_min=p_min, feasible=False)
    return SweepPoint(
        p_max=p_max, p_min=p_min, feasible=True,
        finish_time=result.finish_time,
        energy_cost=result.energy_cost,
        utilization=result.utilization,
        peak_power=result.metrics.peak_power)


def _solve_pairs(problem: SchedulingProblem,
                 pairs: "list[tuple[float, float]]",
                 options: "SchedulerOptions | None",
                 runner) -> "list[SweepPoint]":
    """Solve ``(p_max, p_min)`` pairs — serially, or via a runner.

    The serial loop is the reference path; a
    :class:`~repro.engine.runner.BatchRunner` produces identical points
    while deduplicating repeated pairs and optionally fanning the
    solves across worker processes.
    """
    if runner is None:
        return [_solve_point(problem, p_max, p_min, options)
                for p_max, p_min in pairs]
    from ..engine.jobs import SolveJob
    jobs = [SolveJob(problem=problem.with_power_constraints(p_max, p_min),
                     kind="sweep_point", options=options)
            for p_max, p_min in pairs]
    points = []
    for (p_max, p_min), value in zip(pairs, runner.run_values(jobs)):
        # A job that failed outright (worker death, timeout) degrades
        # to an infeasible point rather than poisoning the sweep.
        points.append(value if value is not None else
                      SweepPoint(p_max=p_max, p_min=p_min,
                                 feasible=False))
    return points


def sweep_p_max(problem: SchedulingProblem,
                budgets: "Iterable[float]",
                p_min: "float | None" = None,
                options: "SchedulerOptions | None" = None,
                runner=None) -> "list[SweepPoint]":
    """Solve the workload under each max-power budget.

    ``p_min`` defaults to the problem's own; it is clamped to each
    budget so the constraint window never inverts.  ``runner`` routes
    the points through the batch engine (see module docstring).
    """
    base_min = problem.p_min if p_min is None else p_min
    pairs = [(budget, min(base_min, budget)) for budget in budgets]
    return _solve_pairs(problem, pairs, options, runner)


def sweep_p_min(problem: SchedulingProblem,
                levels: "Iterable[float]",
                p_max: "float | None" = None,
                options: "SchedulerOptions | None" = None,
                runner=None) -> "list[SweepPoint]":
    """Solve the workload for each free-power level."""
    budget = problem.p_max if p_max is None else p_max
    pairs = [(budget, min(level, budget)) for level in levels]
    return _solve_pairs(problem, pairs, options, runner)


def sweep_grid(problem: SchedulingProblem,
               budgets: "Iterable[float]",
               levels: "Iterable[float]",
               options: "SchedulerOptions | None" = None,
               runner=None) -> "list[SweepPoint]":
    """The full ``sweep_p_max`` × ``sweep_p_min`` cross product.

    Each grid point solves the workload under ``(budget,
    min(level, budget))`` — the clamp keeps the constraint window from
    inverting, and is exactly what makes grids redundancy-rich: every
    level at or above a budget collapses onto the same clamped point,
    which a :class:`~repro.engine.runner.BatchRunner`'s cache then
    solves only once.  Points come back in row-major (budget-outer)
    order.
    """
    levels = list(levels)
    pairs = [(budget, min(level, budget))
             for budget in budgets for level in levels]
    return _solve_pairs(problem, pairs, options, runner)


def knee_point(points: "list[SweepPoint]") -> "SweepPoint | None":
    """The power-performance knee of a ``sweep_p_max`` result.

    The smallest feasible budget whose finish time equals the best
    finish time seen anywhere in the sweep — beyond the knee, extra
    power buys no speed.
    """
    feasible = [p for p in points if p.feasible]
    if not feasible:
        return None
    best_tau = min(p.finish_time for p in feasible)
    at_best = [p for p in feasible if p.finish_time == best_tau]
    return min(at_best, key=lambda p: p.p_max)
