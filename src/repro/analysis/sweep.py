"""Design-space exploration: sweeps over the power-constraint plane.

The whole point of the IMPACCT tooling is "to enable the exploration of
many more points in the design space".  This module automates the
exploration the paper does by hand for three cases: solve the same
workload across a grid of ``(P_max, P_min)`` values and report how
finish time, energy cost, and utilization trade off — including finding
the *power-performance knee* (smallest budget achieving the best finish
time) and the validity ranges for the runtime scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.problem import SchedulingProblem
from ..errors import SchedulingFailure
from ..scheduling.base import ScheduleResult, SchedulerOptions
from ..scheduling.power_aware import PowerAwareScheduler

__all__ = ["SweepPoint", "sweep_p_max", "sweep_p_min", "knee_point"]


@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a sweep."""

    p_max: float
    p_min: float
    feasible: bool
    finish_time: "int | None" = None
    energy_cost: "float | None" = None
    utilization: "float | None" = None
    peak_power: "float | None" = None

    def row(self) -> "dict[str, object]":
        """A report-table row."""
        return {
            "P_max_W": self.p_max,
            "P_min_W": self.p_min,
            "feasible": self.feasible,
            "tau_s": self.finish_time,
            "Ec_J": self.energy_cost,
            "rho_pct": (None if self.utilization is None
                        else 100.0 * self.utilization),
            "peak_W": self.peak_power,
        }


def _solve_point(problem: SchedulingProblem, p_max: float, p_min: float,
                 options: "SchedulerOptions | None") -> SweepPoint:
    scaled = problem.with_power_constraints(p_max=p_max, p_min=p_min)
    try:
        result: ScheduleResult = PowerAwareScheduler(options).solve(scaled)
    except SchedulingFailure:
        return SweepPoint(p_max=p_max, p_min=p_min, feasible=False)
    return SweepPoint(
        p_max=p_max, p_min=p_min, feasible=True,
        finish_time=result.finish_time,
        energy_cost=result.energy_cost,
        utilization=result.utilization,
        peak_power=result.metrics.peak_power)


def sweep_p_max(problem: SchedulingProblem,
                budgets: "Iterable[float]",
                p_min: "float | None" = None,
                options: "SchedulerOptions | None" = None) \
        -> "list[SweepPoint]":
    """Solve the workload under each max-power budget.

    ``p_min`` defaults to the problem's own; it is clamped to each
    budget so the constraint window never inverts.
    """
    base_min = problem.p_min if p_min is None else p_min
    points = []
    for budget in budgets:
        points.append(_solve_point(problem, budget,
                                   min(base_min, budget), options))
    return points


def sweep_p_min(problem: SchedulingProblem,
                levels: "Iterable[float]",
                p_max: "float | None" = None,
                options: "SchedulerOptions | None" = None) \
        -> "list[SweepPoint]":
    """Solve the workload for each free-power level."""
    budget = problem.p_max if p_max is None else p_max
    points = []
    for level in levels:
        points.append(_solve_point(problem, budget,
                                   min(level, budget), options))
    return points


def knee_point(points: "list[SweepPoint]") -> "SweepPoint | None":
    """The power-performance knee of a ``sweep_p_max`` result.

    The smallest feasible budget whose finish time equals the best
    finish time seen anywhere in the sweep — beyond the knee, extra
    power buys no speed.
    """
    feasible = [p for p in points if p.feasible]
    if not feasible:
        return None
    best_tau = min(p.finish_time for p in feasible)
    at_best = [p for p in feasible if p.finish_time == best_tau]
    return min(at_best, key=lambda p: p.p_max)
