"""Plain-text and Markdown table formatting for experiment reports.

EXPERIMENTS.md and the benchmark harnesses print paper-style tables;
this module renders lists of row dicts without any third-party
dependency.  Numeric cells are right-aligned and rounded consistently.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["format_table", "format_markdown_table", "format_cell"]


def format_cell(value: Any, ndigits: int = 2) -> str:
    """Render one cell: floats rounded, percentages passed through."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        rounded = round(value, ndigits)
        if rounded == int(rounded):
            return str(int(rounded))
        return f"{rounded:.{ndigits}f}"
    if value is None:
        return "-"
    return str(value)


def _normalize(rows: "Iterable[Mapping[str, Any]]",
               columns: "list[str] | None") \
        -> "tuple[list[str], list[list[str]]]":
    rows = list(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    body = [[format_cell(row.get(col)) for col in columns]
            for row in rows]
    return columns, body


def format_table(rows: "Iterable[Mapping[str, Any]]",
                 columns: "list[str] | None" = None,
                 title: str = "") -> str:
    """An ASCII table (fixed-width columns, header rule)."""
    columns, body = _normalize(rows, columns)
    if not columns:
        return title or "(empty table)"
    widths = [max(len(col), *(len(r[i]) for r in body)) if body
              else len(col)
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(rows: "Iterable[Mapping[str, Any]]",
                          columns: "list[str] | None" = None) -> str:
    """A GitHub-flavoured Markdown table."""
    columns, body = _normalize(rows, columns)
    if not columns:
        return ""
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
