"""The paper's running example (Fig. 1) — reconstructed.

The DAC-2001 paper illustrates its three algorithms on a nine-task
problem: "Nine tasks named a...i are mapped onto three resources, A, B
and C" (Fig. 1), whose time-valid schedule (Fig. 2) has "one power
spike and several power gaps"; the max-power scheduler removes the
spike by delaying "tasks h and f" (Fig. 5); and the min-power scheduler
produces an improved schedule (Fig. 7) that "can be directly applied to
all cases with a range of constraints where P_max >= 16, P_min <= 14".

The figure artwork is not included in the available text, so this
module reconstructs an instance that satisfies *every* property the
prose states, verified end-to-end by ``tests/test_fig1_example.py``:

========================  =========================================
paper statement           reconstructed behaviour
========================  =========================================
9 tasks a..i on A, B, C   rows A: a,d,g - B: b,h,e - C: c,i,f
Fig. 2: one spike         time-valid profile: 19.5 W > 16 W on [5,10)
Fig. 2: several gaps      13 W on [10,15) and 7.5 W on [15,20)
Fig. 5: h and f delayed   exactly {h, f} receive delay edges
Fig. 7: improved          utilization 96.4% -> 100% at P_min = 14
valid for P_max >= 16     final peak 14 W <= 16 W
full use for P_min <= 14  final floor exactly 14 W
same finish time          tau = 20 s at every stage
========================  =========================================

Derivation sketch: the final schedule is a flat 14 W packing of
280 J across 20 s; the time-valid schedule front-loads ``h`` and ``f``
into a 19.5 W spike whose slack ordering forces exactly those two
tasks to be delayed (h has 5 s of slack against e's release, f is last
on its resource); the min-power stage then slides the small task ``b``
into the 12 W gap the delays left behind.
"""

from __future__ import annotations

from .core.graph import ConstraintGraph
from .core.problem import SchedulingProblem
from .scheduling.base import SchedulerOptions

__all__ = ["fig1_graph", "fig1_problem", "fig1_options",
           "FIG1_P_MAX", "FIG1_P_MIN", "FIG1_TAU"]

#: Power constraints stated in the paper's Section 5.3.
FIG1_P_MAX = 16.0
FIG1_P_MIN = 14.0

#: Finish time of the reconstructed schedules (all three stages).
FIG1_TAU = 20


def fig1_graph() -> ConstraintGraph:
    """The nine-task constraint graph of the running example.

    Vertices are annotated ``r(v)/d(v)/p(v)`` as in the paper's Fig. 1;
    all durations are 5 s.
    """
    g = ConstraintGraph("fig1-example")
    # resource A: a chain with a deadline pinning g
    g.new_task("a", duration=5, power=7.0, resource="A")
    g.new_task("d", duration=5, power=6.0, resource="A")
    g.new_task("g", duration=5, power=6.5, resource="A")
    g.add_precedence("a", "d")
    g.add_precedence("d", "g")
    g.add_start_deadline("g", 10)
    # resource B: small task b, then h; e is released late
    g.new_task("b", duration=5, power=2.0, resource="B")
    g.new_task("h", duration=5, power=7.5, resource="B")
    g.new_task("e", duration=5, power=7.5, resource="B")
    g.add_release("e", 15)
    # resource C: c then i then f (i precedes f)
    g.new_task("c", duration=5, power=7.0, resource="C")
    g.new_task("i", duration=5, power=6.0, resource="C")
    g.new_task("f", duration=5, power=6.5, resource="C")
    g.add_precedence("i", "f")
    return g


def fig1_problem() -> SchedulingProblem:
    """The example problem under the Section-5.3 power constraints."""
    return SchedulingProblem(fig1_graph(), p_max=FIG1_P_MAX,
                             p_min=FIG1_P_MIN, name="fig1-example")


def fig1_options() -> SchedulerOptions:
    """Canonical options for reproducing the figures.

    A single repair run (no multi-start perturbation) keeps the
    schedule evolution exactly as derived above; the defaults would
    find schedules with the same quality but possibly different task
    placements.
    """
    return SchedulerOptions(max_power_restarts=1, seed=2001)
