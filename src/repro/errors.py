"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Scheduling failures are split into *infeasibility*
(no schedule can exist: positive cycle, over-budget task, conflicting
locks) and *heuristic failure* (the bounded-search scheduler gave up;
a schedule might still exist), mirroring the paper's distinction between
provably-complete timing scheduling and heuristic power scheduling.
"""

from __future__ import annotations

__all__ = [
    "GraphError",
    "InfeasibleError",
    "PositiveCycleError",
    "ReproError",
    "SchedulingFailure",
    "SerializationError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Malformed constraint graph (unknown vertex, duplicate task, ...)."""


class PositiveCycleError(ReproError):
    """The constraint graph contains a positive cycle.

    A positive cycle in the (min/max separation) constraint graph means
    the timing constraints are mutually contradictory; no time-valid
    schedule exists.  The offending cycle, when known, is stored in
    :attr:`cycle` as a list of vertex names.
    """

    def __init__(self, message: str = "positive cycle in constraint graph",
                 cycle: "list[str] | None" = None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class InfeasibleError(ReproError):
    """No valid schedule can exist for the given constraints."""


class SchedulingFailure(ReproError):
    """The (heuristic) scheduler failed to find a schedule.

    Unlike :class:`InfeasibleError` this does not prove that no schedule
    exists: the max-power scheduler is a bounded heuristic search
    (Section 5.2 of the paper) and "may not find a valid schedule even
    though one exists".
    """


class ValidationError(ReproError):
    """A schedule violates a constraint it was asserted to satisfy."""


class SerializationError(ReproError):
    """Problem/schedule (de)serialization failed."""
