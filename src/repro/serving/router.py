"""The front-door router: one address over N solve servers.

A :class:`Router` listens like a :class:`~repro.serving.server
.SolveServer` and forwards every request to one of its *members*
(``repro-schedule serve`` instances), so clients — including
:class:`~repro.engine.backends.remote.RemoteBackend` — scale across a
fleet without knowing its shape:

* **Balanced**: ``POST /v1/solve``, ``POST /v1/sweep`` and
  ``POST /v1/sessions`` round-robin over healthy members, reusing
  ``RemoteBackend``'s retry-and-reassignment discipline — a dead
  connection or a retryable error envelope (``queue_full``,
  ``shutting_down``, ...; :data:`~repro.engine.backends.remote
  .RETRYABLE_CODES`) moves the request to the next member, up to
  ``retries`` reassignments.  When every attempt fails at the
  connection level the router answers ``502 bad_gateway`` — itself
  retryable, so a ``RemoteBackend`` pointed at the router keeps its
  own retry budget meaningful.
* **Sticky**: job and session state lives on the member that admitted
  it, so the router *rewrites ids*: member ``i``'s ``j-000001``
  becomes ``m{i}-j-000001`` on the way out, and ``/v1/jobs/m1-...`` /
  ``/v1/sessions/m0-...`` requests are routed back to that member
  (``404 not_found`` when the prefix names no member).  NDJSON event
  streams relay live, line by line, with the same rewrite.
* **Health-gated**: a background probe polls each member's
  ``/healthz``; ``fail_threshold`` consecutive failures bench a
  member until a probe succeeds again.  ``GET /v1/router/members``
  reports the membership (``repro-router-members`` v1).

``/v1/debug/*`` is deliberately *not* proxied — flight recorders are
per-instance diagnostics; ask the member directly (``docs/scaling.md``
shows how).  The conformance-tested operator's guide is
``docs/scaling.md``.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from dataclasses import dataclass, field

from ..engine.backends.remote import RETRYABLE_CODES
from ..io.requests import (ROUTER_MEMBERS_FORMAT,
                           ROUTER_MEMBERS_VERSION, RequestError)
from ..obs import (LOG, TRACEPARENT_HEADER, MetricsRegistry,
                   format_traceparent, new_span_id, new_trace_id,
                   parse_traceparent, prometheus_text,
                   reset_trace_context, set_trace_context, span)
from .protocol import (DEFAULT_MAX_BODY, HttpRequest, read_request,
                       send_ndjson_line, start_ndjson, write_error,
                       write_json, write_text)

__all__ = ["RouterConfig", "Router"]

#: Matches a router-rewritten id: ``m{member}-{upstream id}``.
_MEMBER_ID_RE = re.compile(r"^m(\d+)-(.+)$")

#: Top-level response fields that carry ids the router rewrites.
_ID_FIELDS = ("job", "session")


@dataclass
class RouterConfig:
    """Everything an operator tunes on a front-door router.

    Attributes
    ----------
    host / port:
        Listening address.  Port ``0`` binds an ephemeral port
        (``Router.port`` reports the actual one).
    members:
        Base URLs of the ``serve`` instances behind this router.
    retries:
        Reassignment budget per balanced request (a request may be
        offered to up to ``retries + 1`` members).
    timeout:
        Seconds to wait for a member connection + response head.
    health_interval_s:
        Seconds between background ``/healthz`` probes per member.
    fail_threshold:
        Consecutive probe/forward failures before a member is benched.
    max_body:
        Request body cap, bytes (``payload_too_large`` beyond it).
    log_path:
        When set, enable the process-wide structured event log
        (:data:`repro.obs.LOG`) on this JSONL file.
    """

    host: str = "127.0.0.1"
    port: int = 8081
    members: "list[str]" = field(default_factory=list)
    retries: int = 2
    timeout: float = 60.0
    health_interval_s: float = 1.0
    fail_threshold: int = 3
    max_body: int = DEFAULT_MAX_BODY
    log_path: "str | None" = None


@dataclass
class _Member:
    """One upstream ``serve`` instance and its observed health."""

    index: int
    url: str
    host: str
    port: int
    healthy: bool = True
    consecutive_failures: int = 0
    last_ok_unix: "float | None" = None
    last_error: "str | None" = None
    jobs: int = 0
    sessions: int = 0

    def to_doc(self) -> "dict":
        doc = {
            "member": f"m{self.index}",
            "url": self.url,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "jobs": self.jobs,
            "sessions": self.sessions,
        }
        if self.last_ok_unix is not None:
            doc["last_ok_unix"] = round(self.last_ok_unix, 3)
        if self.last_error is not None:
            doc["last_error"] = self.last_error
        return doc


def _parse_member_url(index: int, url: str) -> _Member:
    import urllib.parse
    parsed = urllib.parse.urlparse(url)
    return _Member(index=index, url=url,
                   host=parsed.hostname or "127.0.0.1",
                   port=parsed.port or 8080)


class Router:
    """Load-balance solve serving over N members; see module doc."""

    def __init__(self, config: RouterConfig):
        if not config.members:
            raise ValueError("a router needs at least one member")
        self.config = config
        self.members = [_parse_member_url(index, url)
                        for index, url in enumerate(config.members)]
        self.metrics = MetricsRegistry()
        self._server: "asyncio.AbstractServer | None" = None
        self._health_task: "asyncio.Task | None" = None
        self.port: "int | None" = None
        self.started_unix = time.time()
        self._rr = 0
        self._owns_log = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the health probe loop."""
        if self.config.log_path and not LOG.enabled:
            LOG.enable(path=self.config.log_path)
            self._owns_log = True
            LOG.emit("router.start", members=len(self.members))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_log:
            LOG.emit("router.stop")
            LOG.disable()
            self._owns_log = False

    # -- membership health ---------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for member in self.members:
                try:
                    status, _headers, _raw, _r, _w = \
                        await self._roundtrip(member, "GET",
                                              "/healthz", None, None)
                except (OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError,
                        ValueError) as exc:
                    self._note_failure(member,
                                       f"{type(exc).__name__}: {exc}")
                    continue
                if status == 200:
                    self._note_success(member)
                else:
                    self._note_failure(member, f"healthz {status}")

    def _note_success(self, member: _Member) -> None:
        member.consecutive_failures = 0
        member.last_ok_unix = time.time()
        member.last_error = None
        if not member.healthy:
            member.healthy = True
            self.metrics.counter("router.member.revived").inc()
            if LOG.enabled:
                LOG.emit("router.member.revived",
                         member=f"m{member.index}", url=member.url)
        self._set_health_gauge()

    def _note_failure(self, member: _Member, reason: str) -> None:
        member.consecutive_failures += 1
        member.last_error = reason[:200]
        if member.healthy and member.consecutive_failures \
                >= self.config.fail_threshold:
            member.healthy = False
            self.metrics.counter("router.member.benched").inc()
            if LOG.enabled:
                LOG.emit("router.member.benched",
                         member=f"m{member.index}", url=member.url,
                         reason=member.last_error)
        self._set_health_gauge()

    def _set_health_gauge(self) -> None:
        self.metrics.gauge("router.members.healthy").set(
            sum(1 for m in self.members if m.healthy))

    def _pick(self, attempt: int) -> _Member:
        """Round-robin over healthy members; when every member is
        benched, rotate over all of them anyway (health information
        may be stale, and a doomed attempt beats a blind 502)."""
        pool = [m for m in self.members if m.healthy] or self.members
        member = pool[(self._rr + attempt) % len(pool)]
        if attempt == 0:
            self._rr += 1
        return member

    # -- upstream I/O --------------------------------------------------

    async def _roundtrip(self, member: _Member, method: str,
                         path: str, body: "bytes | None",
                         trace_header: "str | None"):
        """One upstream request.  Returns ``(status, headers, raw,
        reader, writer)``: ``raw`` is the buffered body when the
        response carries a Content-Length, else ``reader``/``writer``
        are the open stream the caller must relay and close."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(member.host, member.port),
            self.config.timeout)
        try:
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {member.host}:{member.port}",
                    "Connection: close"]
            if trace_header:
                head.append(f"{TRACEPARENT_HEADER}: {trace_header}")
            if body is not None:
                head.append("Content-Type: application/json")
                head.append(f"Content-Length: {len(body)}")
            writer.write(("\r\n".join(head) + "\r\n\r\n")
                         .encode("ascii"))
            if body is not None:
                writer.write(body)
            await writer.drain()
            status, headers = await asyncio.wait_for(
                self._read_head(reader), self.config.timeout)
            length = headers.get("content-length")
            if length is not None:
                raw = await asyncio.wait_for(
                    reader.readexactly(int(length)),
                    self.config.timeout)
                return status, headers, raw, None, None
            stream_reader, stream_writer = reader, writer
            reader = writer = None  # caller owns the stream now
            return status, headers, None, stream_reader, stream_writer
        finally:
            if writer is not None:
                writer.close()

    @staticmethod
    async def _read_head(reader) -> "tuple[int, dict[str, str]]":
        status_line = await reader.readline()
        parts = status_line.decode("ascii", "replace").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(
                f"malformed upstream status line: {status_line!r}")
        status = int(parts[1])
        headers: "dict[str, str]" = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    # -- id rewriting --------------------------------------------------

    @staticmethod
    def _rewrite_ids(doc, member: _Member):
        """Prefix top-level job/session ids with the member tag."""
        if isinstance(doc, dict):
            for fld in _ID_FIELDS:
                value = doc.get(fld)
                if isinstance(value, str):
                    doc[fld] = f"m{member.index}-{value}"
        return doc

    def _resolve_id(self, tagged: str) -> "tuple[_Member, str]":
        """Map a rewritten id back to ``(member, upstream id)``."""
        match = _MEMBER_ID_RE.match(tagged)
        if match is not None:
            index = int(match.group(1))
            if index < len(self.members):
                return self.members[index], match.group(2)
        raise RequestError(
            "not_found",
            f"id {tagged!r} names no member of this router")

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        t0 = time.perf_counter()
        request = None
        error_code = None
        try:
            try:
                request = await read_request(reader,
                                             self.config.max_body)
            except RequestError as exc:
                error_code = exc.code
                write_error(writer, exc)
                return
            if request is None:
                return
            context = parse_traceparent(
                request.headers.get(TRACEPARENT_HEADER))
            if context is not None:
                request.trace_id, request.parent_span_id = context
            else:
                request.trace_id = new_trace_id()
                request.parent_span_id = None
            request.span_id = new_span_id()
            self.metrics.counter("router.requests").inc()
            token = set_trace_context((request.trace_id,
                                       request.span_id))
            try:
                with span("router.request", method=request.method,
                          path=request.path,
                          trace_id=request.trace_id,
                          span_id=request.span_id):
                    await self._route(request, writer)
            except RequestError as exc:
                error_code = exc.code
                self.metrics.counter("router.errors").inc()
                write_error(writer, exc)
            except Exception as exc:  # noqa: BLE001 - 500, not a crash
                error_code = "internal"
                self.metrics.counter("router.errors").inc()
                write_error(writer, RequestError(
                    "internal", f"{type(exc).__name__}: {exc}"))
            finally:
                reset_trace_context(token)
        finally:
            if request is not None:
                self._observe_request(
                    request, writer, time.perf_counter() - t0,
                    error_code)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _route(self, request: HttpRequest, writer) -> None:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            write_json(writer, 200, self._health_doc())
            return
        if path == "/metrics":
            self._require(method, "GET")
            self._set_health_gauge()
            write_text(writer, 200,
                       prometheus_text(self.metrics.snapshot()))
            return
        if path == "/v1/router/members":
            self._require(method, "GET")
            write_json(writer, 200, self._members_doc())
            return
        if path in ("/v1/solve", "/v1/sweep", "/v1/sessions"):
            self._require(method, "POST")
            await self._forward_balanced(request, writer)
            return
        if path.startswith("/v1/jobs/") \
                or path.startswith("/v1/sessions/"):
            await self._forward_sticky(request, writer)
            return
        if path.startswith("/v1/debug/"):
            raise RequestError(
                "not_found",
                "debug endpoints are per-instance; ask the member "
                "directly (see docs/scaling.md)")
        raise RequestError("not_found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(
                "method_not_allowed",
                f"use {expected} for this endpoint, not {method}")

    def _health_doc(self) -> "dict":
        healthy = sum(1 for m in self.members if m.healthy)
        return {
            "status": "ok" if healthy == len(self.members)
                      else ("degraded" if healthy else "down"),
            "members": len(self.members),
            "healthy": healthy,
        }

    def _members_doc(self) -> "dict":
        return {
            "format": ROUTER_MEMBERS_FORMAT,
            "version": ROUTER_MEMBERS_VERSION,
            "members": [member.to_doc() for member in self.members],
        }

    # -- forwarding ----------------------------------------------------

    def _upstream_trace(self, request: HttpRequest) -> str:
        return format_traceparent(request.trace_id, request.span_id)

    async def _forward_balanced(self, request: HttpRequest,
                                writer) -> None:
        """Offer the request to members until one accepts it.

        Mirrors ``RemoteBackend._run_shard``: connection-level
        failures and :data:`RETRYABLE_CODES` envelopes rotate to the
        next member; a non-retryable answer (success *or* client
        error) is relayed immediately.  When the budget runs out the
        last HTTP answer is relayed if there was one, else the router
        answers ``502 bad_gateway``.
        """
        body = request.body or b""
        trace_header = self._upstream_trace(request)
        last_response = None
        last_error = "no members"
        attempts = 0
        while attempts <= self.config.retries:
            member = self._pick(attempts)
            attempts += 1
            try:
                status, _headers, raw, _r, _w = await self._roundtrip(
                    member, request.method, request.path, body,
                    trace_header)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, ValueError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self._note_failure(member, last_error)
                self.metrics.counter("router.retries").inc()
                if LOG.enabled:
                    LOG.emit("router.retry",
                             member=f"m{member.index}",
                             path=request.path, reason=last_error,
                             trace_id=request.trace_id)
                continue
            self._note_success(member)
            try:
                doc = json.loads(raw)
            except ValueError:
                doc = None
            code = None
            if status >= 400 and isinstance(doc, dict) \
                    and isinstance(doc.get("error"), dict):
                code = doc["error"].get("code")
            if code in RETRYABLE_CODES:
                last_response = (status, doc)
                self.metrics.counter("router.upstream_errors").inc()
                self.metrics.counter("router.retries").inc()
                if LOG.enabled:
                    LOG.emit("router.retry",
                             member=f"m{member.index}",
                             path=request.path, reason=code,
                             trace_id=request.trace_id)
                continue
            if isinstance(doc, dict):
                if request.path == "/v1/sessions":
                    member.sessions += 1
                elif "job" in doc:
                    member.jobs += 1
                write_json(writer, status,
                           self._rewrite_ids(doc, member))
            else:
                write_json(writer, status, {"raw": raw.decode(
                    "utf-8", "replace")})
            return
        if last_response is not None:
            status, doc = last_response
            write_json(writer, status, doc)
            return
        raise RequestError(
            "bad_gateway",
            f"no member answered {request.path} after {attempts} "
            f"attempt(s); last error: {last_error}")

    async def _forward_sticky(self, request: HttpRequest,
                              writer) -> None:
        """Route an id-addressed request to the member that owns it.

        No reassignment: the job/session state lives on exactly one
        member, so a dead member is answered with ``502 bad_gateway``
        (clients see a retryable code and can resubmit — the job id
        itself is lost with its instance).
        """
        parts = request.path.split("/")
        # ["", "v1", "jobs"|"sessions", "<tagged id>", ...suffix]
        if len(parts) < 4 or not parts[3]:
            raise RequestError("not_found",
                               f"no route for {request.path!r}")
        member, upstream_id = self._resolve_id(parts[3])
        upstream_path = "/".join(parts[:3] + [upstream_id]
                                 + parts[4:])
        trace_header = self._upstream_trace(request)
        try:
            status, _headers, raw, up_reader, up_writer = \
                await self._roundtrip(member, request.method,
                                      upstream_path, request.body,
                                      trace_header)
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, ValueError) as exc:
            self._note_failure(member, f"{type(exc).__name__}: {exc}")
            raise RequestError(
                "bad_gateway",
                f"member m{member.index} ({member.url}) did not "
                f"answer: {type(exc).__name__}") from exc
        self._note_success(member)
        if raw is not None:
            try:
                doc = json.loads(raw)
            except ValueError:
                write_json(writer, status, {"raw": raw.decode(
                    "utf-8", "replace")})
                return
            write_json(writer, status,
                       self._rewrite_ids(doc, member))
            return
        # NDJSON stream: relay line by line with the id rewrite.  A
        # member dying mid-stream simply ends the relay early — the
        # client's truncated-stream detection takes over from there.
        try:
            start_ndjson(writer, status)
            while True:
                line = await up_reader.readline()
                if not line:
                    break
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except ValueError:
                    break
                if isinstance(record, dict):
                    self._rewrite_ids(record, member)
                send_ndjson_line(writer, record)
                await writer.drain()
        finally:
            up_writer.close()

    # -- observability -------------------------------------------------

    @staticmethod
    def _endpoint_label(path: str) -> str:
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if path == "/v1/router/members":
            return "members"
        if path == "/v1/solve":
            return "v1.solve"
        if path == "/v1/sweep":
            return "v1.sweep"
        if path == "/v1/sessions":
            return "v1.sessions"
        if path.startswith("/v1/sessions/"):
            return "v1.sessions.events" if path.endswith("/events") \
                else "v1.sessions.id"
        if path.startswith("/v1/jobs/"):
            return "v1.jobs.events" if path.endswith("/events") \
                else "v1.jobs"
        return "other"

    def _observe_request(self, request: HttpRequest, writer,
                         elapsed_s: float,
                         error_code: "str | None") -> None:
        label = self._endpoint_label(request.path)
        self.metrics.histogram(
            f"router.latency.{label}.seconds").observe(
                elapsed_s, trace_id=request.trace_id)
        if LOG.enabled:
            LOG.emit("router.access", trace_id=request.trace_id,
                     span_id=request.span_id, method=request.method,
                     path=request.path,
                     status=getattr(writer, "last_status", 200),
                     latency_ms=round(elapsed_s * 1000.0, 3),
                     **({"error": error_code} if error_code else {}))
