"""The shared schedule-store service: one store, many servers.

A :class:`StoreService` owns a single authoritative
:class:`~repro.engine.schedule_store.ScheduleStore` and serves it over
the ``repro-store-request``/``repro-store-response`` v1 protocol, so N
``repro-schedule serve`` instances (each wrapping the store in a
:class:`~repro.serving.store_client.RemoteScheduleStore`) share
validity-range hits instead of warming private stores.

Endpoints (the conformance-tested reference is ``docs/scaling.md``;
the document schemas live in ``docs/formats.md``):

=============================== ====================================
``POST /v1/store/get-range``    probe for a covering schedule under
                                ``(base_key, p_max, p_min)``; with
                                both powers omitted, a *prime probe*
                                for the certified timing-stage entry
``POST /v1/store/put-delta``    merge a drained store journal
                                (journal-dedupe, commutative — see
                                DESIGN.md 5e)
``GET /v1/store/snapshot``      the full ``repro-schedule-store`` v1
                                document (warm a new instance)
``GET /healthz``                liveness + entry counts
``GET /metrics``                Prometheus text exposition
                                (``store.*`` series)
=============================== ====================================

Concurrency: handlers run on one asyncio event loop and never await
between touching store state, so the store needs no lock — concurrent
``put-delta`` merges serialize naturally and commute (DESIGN.md 5e).

Shutdown persists the store back to ``store_path`` when one is
configured, mirroring ``serve --store``.
"""

from __future__ import annotations

import asyncio
import os
import time

from dataclasses import dataclass

from ..engine.schedule_store import CERTIFIED_STAGE, ScheduleStore
from ..errors import SerializationError
from ..io.requests import (RequestError, store_request_from_dict,
                           store_response_envelope)
from ..obs import (LOG, TRACEPARENT_HEADER, MetricsRegistry,
                   new_span_id, new_trace_id, parse_traceparent,
                   prometheus_text, reset_trace_context,
                   set_trace_context, span)
from .protocol import (DEFAULT_MAX_BODY, HttpRequest, read_request,
                       write_error, write_json, write_text)

__all__ = ["StoreServiceConfig", "StoreService"]


@dataclass
class StoreServiceConfig:
    """Everything an operator tunes on a schedule-store service.

    Attributes
    ----------
    host / port:
        Listening address.  Port ``0`` binds an ephemeral port
        (``StoreService.port`` reports the actual one).
    reuse_policy:
        ``identical`` or ``valid`` — the policy :meth:`probe
        <repro.engine.schedule_store.ScheduleStore.probe>` answers
        ``get-range`` with.  Every serve instance sharing the store
        should run the same policy.
    store_path:
        Load the store document at startup (when the file exists) and
        write it back on shutdown.
    max_body:
        Request body cap, bytes (``payload_too_large`` beyond it).
    log_path:
        When set, enable the process-wide structured event log
        (:data:`repro.obs.LOG`) on this JSONL file.
    """

    host: str = "127.0.0.1"
    port: int = 8090
    reuse_policy: str = "identical"
    store_path: "str | None" = None
    max_body: int = DEFAULT_MAX_BODY
    log_path: "str | None" = None


class StoreService:
    """Serve one shared :class:`ScheduleStore` over HTTP."""

    def __init__(self, config: "StoreServiceConfig | None" = None,
                 store: "ScheduleStore | None" = None):
        self.config = config or StoreServiceConfig()
        if store is not None:
            self.store = store
        elif self.config.store_path \
                and os.path.exists(self.config.store_path):
            self.store = ScheduleStore.read(
                self.config.store_path,
                policy=self.config.reuse_policy)
        else:
            self.store = ScheduleStore(
                policy=self.config.reuse_policy)
        self.metrics = MetricsRegistry()
        self._server: "asyncio.AbstractServer | None" = None
        self.port: "int | None" = None
        self.started_unix = time.time()
        self._owns_log = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket."""
        if self.config.log_path and not LOG.enabled:
            LOG.enable(path=self.config.log_path)
            self._owns_log = True
            LOG.emit("store.start", host=self.config.host,
                     policy=self.store.policy,
                     entries=len(self.store))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Persist the store (when configured) and close the socket."""
        if self.config.store_path:
            self.store.write(self.config.store_path)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_log:
            LOG.emit("store.stop", entries=len(self.store))
            LOG.disable()
            self._owns_log = False

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        t0 = time.perf_counter()
        request = None
        error_code = None
        try:
            try:
                request = await read_request(reader,
                                             self.config.max_body)
            except RequestError as exc:
                error_code = exc.code
                write_error(writer, exc)
                return
            if request is None:
                return
            context = parse_traceparent(
                request.headers.get(TRACEPARENT_HEADER))
            if context is not None:
                request.trace_id, request.parent_span_id = context
            else:
                request.trace_id = new_trace_id()
                request.parent_span_id = None
            request.span_id = new_span_id()
            self.metrics.counter("store.requests").inc()
            token = set_trace_context((request.trace_id,
                                       request.span_id))
            try:
                with span("store.request", method=request.method,
                          path=request.path,
                          trace_id=request.trace_id,
                          span_id=request.span_id):
                    self._route(request, writer)
            except RequestError as exc:
                error_code = exc.code
                self.metrics.counter("store.errors").inc()
                write_error(writer, exc)
            except Exception as exc:  # noqa: BLE001 - 500, not a crash
                error_code = "internal"
                self.metrics.counter("store.errors").inc()
                write_error(writer, RequestError(
                    "internal", f"{type(exc).__name__}: {exc}"))
            finally:
                reset_trace_context(token)
        finally:
            if request is not None:
                self._observe_request(
                    request, writer, time.perf_counter() - t0,
                    error_code)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    def _route(self, request: HttpRequest, writer) -> None:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            write_json(writer, 200, self._health_doc())
            return
        if path == "/metrics":
            self._require(method, "GET")
            self.metrics.gauge("store.entries").set(len(self.store))
            write_text(writer, 200,
                       prometheus_text(self.metrics.snapshot()))
            return
        if path == "/v1/store/get-range":
            self._require(method, "POST")
            self._handle_get_range(request, writer)
            return
        if path == "/v1/store/put-delta":
            self._require(method, "POST")
            self._handle_put_delta(request, writer)
            return
        if path == "/v1/store/snapshot":
            self._require(method, "GET")
            write_json(writer, 200, store_response_envelope(
                "snapshot", store=self.store.to_dict()))
            return
        raise RequestError("not_found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(
                "method_not_allowed",
                f"use {expected} for this endpoint, not {method}")

    def _health_doc(self) -> "dict":
        return {
            "status": "ok",
            "policy": self.store.policy,
            "problems": len(self.store.problems),
            "entries": len(self.store),
        }

    # -- the store protocol --------------------------------------------

    def _handle_get_range(self, request: HttpRequest,
                          writer) -> None:
        parsed = store_request_from_dict(request.json())
        if parsed.op != "get-range":
            raise RequestError(
                "bad_request",
                f"op {parsed.op!r} does not match this endpoint")
        if parsed.p_max is None:
            # Prime probe: the certified timing-stage entry, if the
            # store holds one for this workload — regardless of policy
            # (a "valid"-policy store still primes with timing
            # entries, and the caller is asking "has someone already
            # paid for the priming solve?").
            entry = None
            bucket = self.store.problems.get(parsed.base_key)
            if bucket is not None:
                entry = next((e for e in bucket.entries
                              if e.stage == CERTIFIED_STAGE), None)
        else:
            entry = self.store.probe(parsed.base_key, parsed.p_max,
                                     parsed.p_min)
            bucket = self.store.problems.get(parsed.base_key)
        if entry is None:
            self.store.misses += 1
            self.metrics.counter("store.get_range.misses").inc()
            write_json(writer, 200, store_response_envelope(
                "get-range", hit=False, base_key=parsed.base_key))
            return
        self.store.range_hits += 1
        self.metrics.counter("store.get_range.hits").inc()
        write_json(writer, 200, store_response_envelope(
            "get-range", hit=True, base_key=parsed.base_key,
            name=bucket.name if bucket is not None else "",
            entry=entry.to_dict()))

    def _handle_put_delta(self, request: HttpRequest,
                          writer) -> None:
        parsed = store_request_from_dict(request.json())
        if parsed.op != "put-delta":
            raise RequestError(
                "bad_request",
                f"op {parsed.op!r} does not match this endpoint")
        try:
            merged = self.store.merge_delta(parsed.delta)
        except SerializationError as exc:
            raise RequestError(
                "bad_request",
                f"invalid stored-schedule entry: {exc}") from exc
        # The service is the root store: nobody drains *its* journal,
        # so discard it to keep memory bounded.
        self.store.drain_journal()
        deduped = len(parsed.delta) - merged
        self.metrics.counter("store.put_delta.merged").inc(merged)
        self.metrics.counter("store.put_delta.deduped").inc(deduped)
        if LOG.enabled:
            LOG.emit("store.merge", merged=merged, deduped=deduped,
                     entries=len(self.store),
                     trace_id=request.trace_id)
        write_json(writer, 200, store_response_envelope(
            "put-delta", merged=merged, deduped=deduped,
            entries=len(self.store)))

    # -- observability -------------------------------------------------

    @staticmethod
    def _endpoint_label(path: str) -> str:
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if path == "/v1/store/get-range":
            return "get_range"
        if path == "/v1/store/put-delta":
            return "put_delta"
        if path == "/v1/store/snapshot":
            return "snapshot"
        return "other"

    def _observe_request(self, request: HttpRequest, writer,
                         elapsed_s: float,
                         error_code: "str | None") -> None:
        label = self._endpoint_label(request.path)
        self.metrics.histogram(
            f"store.latency.{label}.seconds").observe(
                elapsed_s, trace_id=request.trace_id)
        if LOG.enabled:
            LOG.emit("store.access", trace_id=request.trace_id,
                     span_id=request.span_id, method=request.method,
                     path=request.path,
                     status=getattr(writer, "last_status", 200),
                     latency_ms=round(elapsed_s * 1000.0, 3),
                     **({"error": error_code} if error_code else {}))
