"""The async solve server: JSON-over-HTTP front-end to the engine.

One :class:`SolveServer` owns one event loop's worth of state: a
listening socket (``asyncio.start_server`` — pure stdlib), a
:class:`~repro.serving.batching.Batcher` feeding a shared
:class:`~repro.engine.runner.BatchRunner` (result cache and, when
enabled, validity-range schedule store attached), a bounded job
registry, and a :class:`~repro.obs.metrics.MetricsRegistry` exported at
``/metrics`` in Prometheus text form.

Endpoints (the authoritative, conformance-tested reference is
``docs/serving.md``):

=========================== ========================================
``POST /v1/solve``          synchronous: one problem, one (or a few)
                            points; the response carries the solved
                            rows
``POST /v1/sweep``          asynchronous: returns ``202`` with a job
                            id immediately
``GET /v1/jobs/{id}``       job status / results document
``GET /v1/jobs/{id}/events`` NDJSON progress stream
                            (``repro-serve-events`` v1)
``DELETE /v1/jobs/{id}``    cancel a queued or running job
``GET /healthz``            liveness + queue depths
``GET /metrics``            Prometheus text exposition
=========================== ========================================

Shutdown is a *drain*: :meth:`SolveServer.shutdown` stops admission
(new solve/sweep requests get ``503 shutting_down``), runs every
already-accepted job to completion, optionally writes the server trace
document, and only then closes the socket.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field

from ..engine import BatchRunner, RunnerConfig, ScheduleStore
from ..io.requests import (RequestError, error_envelope,
                           response_envelope, solve_request_from_dict)
from ..io.requests import EVENTS_FORMAT, EVENTS_VERSION
from ..obs import MetricsRegistry, prometheus_text, span
from .batching import Batcher, BatchingConfig, Submission
from .protocol import (DEFAULT_MAX_BODY, HttpRequest, read_request,
                       send_ndjson_line, start_ndjson, write_error,
                       write_json, write_text)

__all__ = ["ServingConfig", "SolveServer"]

#: Finished submissions kept in the job registry for later
#: ``GET /v1/jobs/{id}`` lookups; the oldest are evicted beyond this.
JOB_RETENTION = 1024


@dataclass
class ServingConfig:
    """Everything an operator tunes on a solve server.

    Attributes
    ----------
    host / port:
        Listening address.  Port ``0`` binds an ephemeral port
        (``SolveServer.port`` reports the actual one).
    max_batch / max_wait_ms / queue_limit:
        Micro-batching knobs — see
        :class:`~repro.serving.batching.BatchingConfig`.
    workers:
        Worker processes for the underlying engine batch (``0`` =
        solve in the server process).
    reuse_schedules / reuse_policy / store_path:
        Attach the validity-range schedule store (paper Section 5.3)
        so covered points are served without re-solving;
        ``store_path`` additionally loads the store at startup and
        writes it back on shutdown.
    max_body:
        Request body cap, bytes (``payload_too_large`` beyond it).
    trace_path:
        When set, shutdown writes a ``repro-serve-trace`` JSON
        document (metrics snapshot + per-job summaries) here.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 16
    max_wait_ms: float = 10.0
    queue_limit: int = 256
    workers: int = 0
    reuse_schedules: bool = False
    reuse_policy: str = "identical"
    store_path: "str | None" = None
    max_body: int = DEFAULT_MAX_BODY
    trace_path: "str | None" = None

    def batching(self) -> BatchingConfig:
        return BatchingConfig(max_batch=self.max_batch,
                              max_wait_ms=self.max_wait_ms,
                              queue_limit=self.queue_limit)


class SolveServer:
    """Serve solve requests over HTTP; see the module docstring."""

    def __init__(self, config: "ServingConfig | None" = None,
                 runner: "BatchRunner | None" = None):
        self.config = config or ServingConfig()
        if runner is not None:
            self.runner = runner
        else:
            store = None
            reuse = self.config.reuse_schedules \
                or bool(self.config.store_path)
            if self.config.store_path \
                    and os.path.exists(self.config.store_path):
                store = ScheduleStore.read(
                    self.config.store_path,
                    policy=self.config.reuse_policy)
            self.runner = BatchRunner(
                RunnerConfig(workers=self.config.workers,
                             reuse_schedules=reuse,
                             reuse_policy=self.config.reuse_policy),
                store=store)
        self.metrics = MetricsRegistry()
        self.batcher = Batcher(self.runner, self.config.batching(),
                               registry=self.metrics)
        self.jobs: "dict[str, Submission]" = {}
        self._job_counter = 0
        self._server: "asyncio.AbstractServer | None" = None
        self.port: "int | None" = None
        self.started_unix = time.time()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the dispatch loop."""
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Drain: finish accepted jobs, persist state, close."""
        await self.batcher.drain()
        if self.config.store_path and self.runner.store is not None:
            self.runner.store.write(self.config.store_path)
        if self.config.trace_path:
            self.write_trace(self.config.trace_path)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def write_trace(self, path: str) -> None:
        """The ``repro-serve-trace`` v1 document: metrics + jobs."""
        doc = {
            "format": "repro-serve-trace",
            "version": 1,
            "started_unix": round(self.started_unix, 3),
            "batches": self.batcher.batches,
            "metrics": self.metrics.snapshot(),
            "jobs": [
                {"job": submission.id, "status": submission.status,
                 "points": len(submission.jobs),
                 "elapsed_ms": submission.elapsed_ms()}
                for submission in self.jobs.values()],
        }
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, indent=1, sort_keys=False)
                         + "\n")

    # -- submission plumbing -------------------------------------------

    def _admit(self, request: HttpRequest) -> Submission:
        """Parse, validate, and enqueue one solve/sweep request."""
        parsed = solve_request_from_dict(request.json())
        self._job_counter += 1
        submission = Submission(f"j-{self._job_counter:06d}", parsed,
                                asyncio.get_running_loop())
        self.batcher.submit(submission)  # may raise 429/503
        self.jobs[submission.id] = submission
        self.metrics.counter("serving.jobs.accepted").inc()
        self.metrics.histogram("serving.job.points") \
            .observe(len(submission.jobs))
        while len(self.jobs) > JOB_RETENTION:
            oldest = next(iter(self.jobs))
            if self.jobs[oldest].status in ("done", "cancelled",
                                            "error"):
                del self.jobs[oldest]
            else:
                break
        return submission

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader,
                                             self.config.max_body)
            except RequestError as exc:
                write_error(writer, exc)
                return
            if request is None:
                return
            self.metrics.counter("serving.http.requests").inc()
            try:
                with span("serving.request",
                          method=request.method, path=request.path):
                    await self._route(request, reader, writer)
            except RequestError as exc:
                self.metrics.counter("serving.http.errors").inc()
                write_error(writer, exc)
            except Exception as exc:  # noqa: BLE001 - 500, not a crash
                self.metrics.counter("serving.http.errors").inc()
                write_error(writer, RequestError(
                    "internal", f"{type(exc).__name__}: {exc}"))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _route(self, request: HttpRequest, reader,
                     writer) -> None:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            write_json(writer, 200, self._health_doc())
            return
        if path == "/metrics":
            self._require(method, "GET")
            write_text(writer, 200,
                       prometheus_text(self.metrics.snapshot()))
            return
        if path == "/v1/solve":
            self._require(method, "POST")
            await self._handle_solve(request, writer)
            return
        if path == "/v1/sweep":
            self._require(method, "POST")
            submission = self._admit(request)
            write_json(writer, 202, submission.to_response())
            return
        if path.startswith("/v1/jobs/"):
            await self._route_job(request, writer)
            return
        raise RequestError("not_found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(
                "method_not_allowed",
                f"use {expected} for this endpoint, not {method}")

    def _health_doc(self) -> "dict":
        live = [s for s in self.jobs.values()
                if s.status in ("queued", "running")]
        return {
            "status": "draining" if self.batcher.draining else "ok",
            "draining": self.batcher.draining,
            "queued_jobs": self.batcher.queued_jobs,
            "live_submissions": len(live),
            "batches": self.batcher.batches,
        }

    async def _handle_solve(self, request: HttpRequest,
                            writer) -> None:
        """``POST /v1/solve``: admit, await completion, answer."""
        submission = self._admit(request)
        timeout = None
        if submission.deadline is not None:
            timeout = max(0.0, submission.deadline
                          - asyncio.get_running_loop().time())
        try:
            await asyncio.wait_for(submission.done.wait(), timeout)
        except asyncio.TimeoutError:
            submission.expire()
        if submission.status == "done":
            self.metrics.histogram("serving.solve.seconds").observe(
                submission.elapsed_ms() / 1000.0)
            write_json(writer, 200, submission.to_response())
            return
        error = submission.error or RequestError(
            "internal", f"job ended as {submission.status}")
        doc = error_envelope(error)
        doc["job"] = submission.id
        self.metrics.counter("serving.http.errors").inc()
        write_json(writer, error.http_status, doc)

    async def _route_job(self, request: HttpRequest, writer) -> None:
        parts = request.path.strip("/").split("/")
        # "/v1/jobs/{id}" -> [v1, jobs, id]; +"/events" -> 4 parts
        if len(parts) < 3 or len(parts) > 4:
            raise RequestError("not_found",
                               f"no route for {request.path!r}")
        submission = self.jobs.get(parts[2])
        if submission is None:
            raise RequestError("not_found",
                               f"unknown job {parts[2]!r}")
        if len(parts) == 4:
            if parts[3] != "events":
                raise RequestError("not_found",
                                   f"no route for {request.path!r}")
            self._require(request.method, "GET")
            await self._stream_events(submission, writer)
            return
        if request.method == "DELETE":
            was_live = submission.cancel()
            if was_live:
                self.metrics.counter("serving.jobs.cancelled").inc()
            write_json(writer, 200, submission.to_response())
            return
        self._require(request.method, "GET")
        write_json(writer, 200, submission.to_response())

    async def _stream_events(self, submission: Submission,
                             writer) -> None:
        """``GET /v1/jobs/{id}/events``: replay + live-tail NDJSON."""
        start_ndjson(writer, 200)
        send_ndjson_line(writer, {
            "format": EVENTS_FORMAT, "version": EVENTS_VERSION,
            "job": submission.id, "status": submission.status,
        })
        cursor = 0
        while True:
            limit = await submission.wait_events(cursor)
            for event in submission.events[cursor:limit]:
                send_ndjson_line(writer, {"job": submission.id,
                                          **event})
            cursor = limit
            try:
                await writer.drain()
            except Exception:  # noqa: BLE001 - client hung up
                return
            if submission.done.is_set() \
                    and cursor >= len(submission.events):
                return
