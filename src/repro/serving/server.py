"""The async solve server: JSON-over-HTTP front-end to the engine.

One :class:`SolveServer` owns one event loop's worth of state: a
listening socket (``asyncio.start_server`` — pure stdlib), a
:class:`~repro.serving.batching.Batcher` feeding a shared
:class:`~repro.engine.runner.BatchRunner` (result cache and, when
enabled, validity-range schedule store attached), a bounded job
registry, and a :class:`~repro.obs.metrics.MetricsRegistry` exported at
``/metrics`` in Prometheus text form.

Endpoints (the authoritative, conformance-tested reference is
``docs/serving.md``):

=========================== ========================================
``POST /v1/solve``          synchronous: one problem, one (or a few)
                            points; the response carries the solved
                            rows
``POST /v1/sweep``          asynchronous: returns ``202`` with a job
                            id immediately
``GET /v1/jobs/{id}``       job status / results document
``GET /v1/jobs/{id}/events`` NDJSON progress stream
                            (``repro-serve-events`` v1)
``DELETE /v1/jobs/{id}``    cancel a queued or running job
``GET /healthz``            liveness + queue depths
``GET /metrics``            Prometheus text exposition
``GET /v1/debug/requests``  the flight recorder: the last K request
                            records plus every slow/errored one
``GET /v1/debug/trace/{t}`` one stitched distributed trace — the
                            request span(s) of trace id ``t`` with
                            their engine/scheduler span forests
``POST /v1/sessions``       open an online mission session
                            (``repro-session-request`` v1)
``POST /v1/sessions/{id}/events`` apply a batch of arrival / advance /
                            fault / quiesce commands; the response is
                            a ``repro-session-event`` v1 NDJSON
                            stream of admit/reject/commit/replan
                            events (``docs/online.md``)
``GET /v1/sessions/{id}``   session status document
``DELETE /v1/sessions/{id}`` close a session
=========================== ========================================

Observability: every request either carries a W3C-style
``traceparent`` header or gets a freshly minted trace id; the id
correlates the access-log event (:data:`repro.obs.LOG`), the
per-endpoint latency histogram exemplar on ``/metrics``, the flight
recorder record, and — for solve/sweep work — the engine run spans the
batcher attributes back to the submission.  ``docs/observability.md``
walks the whole pipeline.

Shutdown is a *drain*: :meth:`SolveServer.shutdown` stops admission
(new solve/sweep requests get ``503 shutting_down``), runs every
already-accepted job to completion, optionally writes the server trace
document, and only then closes the socket.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field

from ..engine import BatchRunner, RunnerConfig, ScheduleStore
from ..errors import ReproError
from ..io.requests import (RequestError, error_envelope,
                           response_envelope, solve_request_from_dict)
from ..io.requests import (DEBUG_REQUESTS_FORMAT,
                           DEBUG_REQUESTS_VERSION, DEBUG_TRACE_FORMAT,
                           DEBUG_TRACE_VERSION, EVENTS_FORMAT,
                           EVENTS_VERSION, SESSION_EVENT_FORMAT,
                           SESSION_EVENT_VERSION,
                           session_commands_from_dict,
                           session_request_from_dict)
from ..online import MissionSession, SessionConfig
from ..scheduling.base import SchedulerOptions
from ..obs import (LOG, TRACEPARENT_HEADER, MetricsRegistry,
                   new_span_id, new_trace_id, parse_traceparent,
                   prometheus_text, reset_trace_context,
                   set_trace_context, span)
from .batching import Batcher, BatchingConfig, Submission
from .protocol import (DEFAULT_MAX_BODY, HttpRequest, read_request,
                       send_ndjson_line, start_ndjson, write_error,
                       write_json, write_text)

__all__ = ["ServingConfig", "SolveServer"]

#: Finished submissions kept in the job registry for later
#: ``GET /v1/jobs/{id}`` lookups; the oldest are evicted beyond this.
JOB_RETENTION = 1024

#: Mission sessions kept in the registry; closed sessions are evicted
#: oldest-first beyond this (live sessions are never evicted).
SESSION_RETENTION = 256


@dataclass
class ServingConfig:
    """Everything an operator tunes on a solve server.

    Attributes
    ----------
    host / port:
        Listening address.  Port ``0`` binds an ephemeral port
        (``SolveServer.port`` reports the actual one).
    max_batch / max_wait_ms / queue_limit:
        Micro-batching knobs — see
        :class:`~repro.serving.batching.BatchingConfig`.
    workers:
        Worker processes for the underlying engine batch (``0`` =
        solve in the server process).
    reuse_schedules / reuse_policy / store_path:
        Attach the validity-range schedule store (paper Section 5.3)
        so covered points are served without re-solving;
        ``store_path`` additionally loads the store at startup and
        writes it back on shutdown.
    store_url:
        Base URL of a shared schedule-store service
        (``repro-schedule store-serve``); implies
        ``reuse_schedules`` and swaps the private store for a
        :class:`~repro.serving.store_client.RemoteScheduleStore`, so
        validity-range hits are shared across every instance pointed
        at the same service (``docs/scaling.md``).
    session_ttl_s:
        When set, a background sweep closes and evicts mission
        sessions idle for at least this many seconds (the
        ``session.evicted`` metric counts them; ``docs/online.md``).
    max_body:
        Request body cap, bytes (``payload_too_large`` beyond it).
    trace_path:
        When set, shutdown writes a ``repro-serve-trace`` JSON
        document (metrics snapshot + per-job summaries) here.
    flight_recorder / slow_ms:
        Flight-recorder sizing: the last ``flight_recorder`` request
        records are always retained, and a second same-sized ring
        keeps every request that errored or took at least ``slow_ms``
        milliseconds (``GET /v1/debug/requests`` shows both).
    log_path:
        When set, the server enables the process-wide structured
        event log (:data:`repro.obs.LOG`) on this JSONL file at
        startup and closes it on shutdown.
    instrument:
        Run the engine with span capture on (the default), so
        ``GET /v1/debug/trace/{trace_id}`` can show scheduler-stage
        spans under each request.  Turn off to shave per-batch
        overhead when nobody is tracing.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 16
    max_wait_ms: float = 10.0
    queue_limit: int = 256
    workers: int = 0
    reuse_schedules: bool = False
    reuse_policy: str = "identical"
    store_path: "str | None" = None
    store_url: "str | None" = None
    session_ttl_s: "float | None" = None
    max_body: int = DEFAULT_MAX_BODY
    trace_path: "str | None" = None
    flight_recorder: int = 64
    slow_ms: float = 1000.0
    log_path: "str | None" = None
    instrument: bool = True

    def batching(self) -> BatchingConfig:
        return BatchingConfig(max_batch=self.max_batch,
                              max_wait_ms=self.max_wait_ms,
                              queue_limit=self.queue_limit)


@dataclass
class _SessionEntry:
    """One live mission session plus its serialization lock."""

    id: str
    session: MissionSession
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    opened_unix: float = field(default_factory=time.time)
    #: Last time any request touched this session; the idle-TTL
    #: eviction sweep (``--session-ttl``) keys off it.
    last_active_unix: float = field(default_factory=time.time)

    def touch(self) -> None:
        self.last_active_unix = time.time()

    def status_doc(self) -> "dict":
        """The ``GET /v1/sessions/{id}`` body."""
        engine = self.session
        doc = {
            "session": self.id,
            "scheduler": engine.config.scheduler,
            "p_max": engine.config.p_max,
            "p_min": engine.config.p_min,
            "now": engine.now,
            "admitted": list(engine.admitted),
            "committed": dict(engine.committed),
            "rejected": [name for name, _ in engine.rejected],
            "events": len(engine.events),
            "solves": engine.solves,
        }
        if engine.schedule is not None:
            doc["makespan"] = engine.schedule.makespan
            doc["starts"] = engine.schedule.as_dict()
        return doc


class SolveServer:
    """Serve solve requests over HTTP; see the module docstring."""

    def __init__(self, config: "ServingConfig | None" = None,
                 runner: "BatchRunner | None" = None):
        self.config = config or ServingConfig()
        if runner is not None:
            self.runner = runner
        else:
            store = None
            reuse = self.config.reuse_schedules \
                or bool(self.config.store_path) \
                or bool(self.config.store_url)
            if self.config.store_url:
                from .store_client import RemoteScheduleStore
                store = RemoteScheduleStore(
                    self.config.store_url,
                    policy=self.config.reuse_policy)
            elif self.config.store_path \
                    and os.path.exists(self.config.store_path):
                store = ScheduleStore.read(
                    self.config.store_path,
                    policy=self.config.reuse_policy)
            self.runner = BatchRunner(
                RunnerConfig(workers=self.config.workers,
                             reuse_schedules=reuse,
                             reuse_policy=self.config.reuse_policy,
                             instrument=self.config.instrument),
                store=store)
        self.metrics = MetricsRegistry()
        self.batcher = Batcher(self.runner, self.config.batching(),
                               registry=self.metrics)
        self.jobs: "dict[str, Submission]" = {}
        self._job_counter = 0
        #: Online mission sessions (``POST /v1/sessions``); each entry
        #: pairs the engine with an asyncio lock so command batches on
        #: one session serialize while distinct sessions run freely.
        self.sessions: "dict[str, _SessionEntry]" = {}
        self._session_counter = 0
        self._server: "asyncio.AbstractServer | None" = None
        self._session_gc_task: "asyncio.Task | None" = None
        self.port: "int | None" = None
        self.started_unix = time.time()
        capacity = max(1, self.config.flight_recorder)
        #: Flight recorder: the last ``capacity`` requests, and every
        #: slow/errored request, each as a small JSON-able record.
        self.recent: "deque[dict]" = deque(maxlen=capacity)
        self.notable: "deque[dict]" = deque(maxlen=capacity)
        self._owns_log = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the dispatch loop."""
        if self.config.log_path and not LOG.enabled:
            LOG.enable(path=self.config.log_path)
            self._owns_log = True
            LOG.emit("server.start", host=self.config.host,
                     workers=self.config.workers)
        self.batcher.start()
        if getattr(self.runner.store, "remote", False):
            # Warm the local cache from the shared store so this
            # instance starts with every entry its siblings already
            # paid for (best-effort: a dead service costs hit rate,
            # never startup).
            pulled = await asyncio.to_thread(self.runner.store.pull)
            if LOG.enabled:
                LOG.emit("store.pull", pulled=pulled,
                         url=self.runner.store.store_url)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.session_ttl_s:
            self._session_gc_task = asyncio.ensure_future(
                self._session_gc_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Drain: finish accepted jobs, persist state, close."""
        if self._session_gc_task is not None:
            self._session_gc_task.cancel()
            try:
                await self._session_gc_task
            except asyncio.CancelledError:
                pass
            self._session_gc_task = None
        await self.batcher.drain()
        if getattr(self.runner.store, "remote", False):
            # Last push so the shared store keeps entries this
            # instance solved after its final batch sync.
            await asyncio.to_thread(self.runner.store.sync)
        if self.config.store_path and self.runner.store is not None:
            self.runner.store.write(self.config.store_path)
        if self.config.trace_path:
            self.write_trace(self.config.trace_path)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._owns_log:
            LOG.emit("server.stop", batches=self.batcher.batches)
            LOG.disable()
            self._owns_log = False

    async def _session_gc_loop(self) -> None:
        """Close and evict mission sessions idle past the TTL.

        The sweep runs every ``ttl / 4`` (bounded to [50 ms, 30 s]);
        a session whose lock is held (a command batch is running) is
        never considered idle, and already-closed sessions are evicted
        by the same idleness rule so the registry cannot pin dead
        state for ``SESSION_RETENTION``-scale lifetimes.
        """
        ttl = self.config.session_ttl_s
        interval = max(0.05, min(ttl / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            cutoff = time.time() - ttl
            expired = [entry for entry in self.sessions.values()
                       if not entry.lock.locked()
                       and entry.last_active_unix <= cutoff]
            for entry in expired:
                entry.session.close()
                del self.sessions[entry.id]
                self.metrics.counter("session.evicted").inc()
                if LOG.enabled:
                    LOG.emit("session.evicted", session=entry.id,
                             idle_s=round(
                                 time.time()
                                 - entry.last_active_unix, 3))
            if expired:
                self.metrics.gauge("session.live").set(
                    sum(1 for e in self.sessions.values()
                        if not e.session.closed))

    def write_trace(self, path: str) -> None:
        """The ``repro-serve-trace`` v1 document: metrics + jobs."""
        doc = {
            "format": "repro-serve-trace",
            "version": 1,
            "started_unix": round(self.started_unix, 3),
            "batches": self.batcher.batches,
            "metrics": self.metrics.snapshot(),
            "jobs": [
                {"job": submission.id, "status": submission.status,
                 "points": len(submission.jobs),
                 "elapsed_ms": submission.elapsed_ms()}
                for submission in self.jobs.values()],
        }
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, indent=1, sort_keys=False)
                         + "\n")

    # -- submission plumbing -------------------------------------------

    def _admit(self, request: HttpRequest) -> Submission:
        """Parse, validate, and enqueue one solve/sweep request."""
        parsed = solve_request_from_dict(request.json())
        self._job_counter += 1
        submission = Submission(f"j-{self._job_counter:06d}", parsed,
                                asyncio.get_running_loop())
        # The request's distributed-trace identity rides on the
        # submission so the batcher can attribute engine spans back to
        # it (and run single-submission batches under this trace id).
        submission.trace_id = request.trace_id
        submission.parent_span_id = request.parent_span_id
        submission.request_span_id = request.span_id
        self.batcher.submit(submission)  # may raise 429/503
        self.jobs[submission.id] = submission
        request.job_id = submission.id
        self.metrics.counter("serving.jobs.accepted").inc()
        self.metrics.histogram("serving.job.points") \
            .observe(len(submission.jobs))
        while len(self.jobs) > JOB_RETENTION:
            oldest = next(iter(self.jobs))
            if self.jobs[oldest].status in ("done", "cancelled",
                                            "error"):
                del self.jobs[oldest]
            else:
                break
        return submission

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        t0 = time.perf_counter()
        request = None
        error_code = None
        try:
            try:
                request = await read_request(reader,
                                             self.config.max_body)
            except RequestError as exc:
                error_code = exc.code
                write_error(writer, exc)
                return
            if request is None:
                return
            # Adopt the caller's trace (W3C-style traceparent header)
            # or mint a fresh one; the server-side request span id is
            # what engine/runner spans hang beneath.
            context = parse_traceparent(
                request.headers.get(TRACEPARENT_HEADER))
            if context is not None:
                request.trace_id, request.parent_span_id = context
            else:
                request.trace_id = new_trace_id()
                request.parent_span_id = None
            request.span_id = new_span_id()
            request.job_id = None
            request.session_id = None
            self.metrics.counter("serving.http.requests").inc()
            token = set_trace_context((request.trace_id,
                                       request.span_id))
            try:
                with span("serving.request",
                          method=request.method, path=request.path,
                          trace_id=request.trace_id,
                          span_id=request.span_id):
                    await self._route(request, reader, writer)
            except RequestError as exc:
                error_code = exc.code
                self.metrics.counter("serving.http.errors").inc()
                write_error(writer, exc)
            except Exception as exc:  # noqa: BLE001 - 500, not a crash
                error_code = "internal"
                self.metrics.counter("serving.http.errors").inc()
                write_error(writer, RequestError(
                    "internal", f"{type(exc).__name__}: {exc}"))
            finally:
                reset_trace_context(token)
        finally:
            if request is not None:
                self._observe_request(
                    request, writer, time.perf_counter() - t0,
                    error_code)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    async def _route(self, request: HttpRequest, reader,
                     writer) -> None:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require(method, "GET")
            write_json(writer, 200, self._health_doc())
            return
        if path == "/metrics":
            self._require(method, "GET")
            write_text(writer, 200,
                       prometheus_text(self.metrics.snapshot()))
            return
        if path == "/v1/solve":
            self._require(method, "POST")
            await self._handle_solve(request, writer)
            return
        if path == "/v1/sweep":
            self._require(method, "POST")
            submission = self._admit(request)
            write_json(writer, 202, submission.to_response())
            return
        if path == "/v1/debug/requests":
            self._require(method, "GET")
            write_json(writer, 200, self._debug_requests_doc())
            return
        if path.startswith("/v1/debug/trace/"):
            self._require(method, "GET")
            trace_id = path[len("/v1/debug/trace/"):]
            write_json(writer, 200, self._debug_trace_doc(trace_id))
            return
        if path == "/v1/sessions":
            self._require(method, "POST")
            self._open_session(request, writer)
            return
        if path.startswith("/v1/sessions/"):
            await self._route_session(request, writer)
            return
        if path.startswith("/v1/jobs/"):
            await self._route_job(request, writer)
            return
        raise RequestError("not_found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(
                "method_not_allowed",
                f"use {expected} for this endpoint, not {method}")

    def _health_doc(self) -> "dict":
        live = [s for s in self.jobs.values()
                if s.status in ("queued", "running")]
        return {
            "status": "draining" if self.batcher.draining else "ok",
            "draining": self.batcher.draining,
            "queued_jobs": self.batcher.queued_jobs,
            "live_submissions": len(live),
            "batches": self.batcher.batches,
        }

    # -- flight recorder -----------------------------------------------

    @staticmethod
    def _endpoint_label(path: str) -> str:
        """The bounded endpoint label latency metrics are keyed by."""
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if path == "/v1/solve":
            return "v1.solve"
        if path == "/v1/sweep":
            return "v1.sweep"
        if path == "/v1/debug/requests":
            return "v1.debug.requests"
        if path.startswith("/v1/debug/trace/"):
            return "v1.debug.trace"
        if path == "/v1/sessions":
            return "v1.sessions"
        if path.startswith("/v1/sessions/"):
            return "v1.sessions.events" if path.endswith("/events") \
                else "v1.sessions.id"
        if path.startswith("/v1/jobs/"):
            return "v1.jobs.events" if path.endswith("/events") \
                else "v1.jobs"
        return "other"

    def _observe_request(self, request: HttpRequest, writer,
                         elapsed_s: float,
                         error_code: "str | None") -> None:
        """Record one finished request everywhere it is observable:
        the per-endpoint latency histogram (with this trace id as the
        exemplar candidate), the flight-recorder rings, and the
        structured access log."""
        status = getattr(writer, "last_status", 200)
        label = self._endpoint_label(request.path)
        self.metrics.histogram(
            f"serving.latency.{label}.seconds").observe(
                elapsed_s, trace_id=request.trace_id)
        latency_ms = round(elapsed_s * 1000.0, 3)
        record = {
            "at_unix": round(time.time(), 3),
            "method": request.method,
            "path": request.path,
            "endpoint": label,
            "status": status,
            "latency_ms": latency_ms,
            "trace_id": request.trace_id,
            "span_id": request.span_id,
        }
        if request.parent_span_id:
            record["parent_span_id"] = request.parent_span_id
        if request.job_id:
            record["job"] = request.job_id
        if getattr(request, "session_id", None):
            record["session"] = request.session_id
        if error_code:
            record["error"] = error_code
        self.recent.append(record)
        if error_code or status >= 400 \
                or latency_ms >= self.config.slow_ms:
            self.notable.append(record)
        if LOG.enabled:
            LOG.emit("http.access", trace_id=request.trace_id,
                     span_id=request.span_id, method=request.method,
                     path=request.path, status=status,
                     latency_ms=latency_ms,
                     **({"job": request.job_id}
                        if request.job_id else {}),
                     **({"session": request.session_id}
                        if getattr(request, "session_id", None)
                        else {}))

    def _debug_requests_doc(self) -> "dict":
        """``GET /v1/debug/requests``: both rings, newest first."""
        return {
            "format": DEBUG_REQUESTS_FORMAT,
            "version": DEBUG_REQUESTS_VERSION,
            "capacity": self.recent.maxlen,
            "slow_ms": self.config.slow_ms,
            "requests": list(reversed(self.recent)),
            "notable": list(reversed(self.notable)),
        }

    def _debug_trace_doc(self, trace_id: str) -> "dict":
        """``GET /v1/debug/trace/{id}``: assemble one stitched trace.

        Every recorded request span of the trace, oldest first, each
        carrying the engine span forest the batcher attributed to its
        submission (so a remote-backend solve shows
        client -> server -> engine.run -> engine.job -> sched.* in one
        tree).  ``not_found`` when the recorder holds no such trace.
        """
        records: "dict[str, dict]" = {}
        for record in list(self.recent) + list(self.notable):
            if record.get("trace_id") == trace_id:
                records[record["span_id"]] = record
        if not records:
            raise RequestError(
                "not_found",
                f"flight recorder holds no requests for trace "
                f"{trace_id!r}")
        spans = []
        for record in sorted(records.values(),
                             key=lambda rec: rec["at_unix"]):
            attr_keys = ("method", "path", "status", "trace_id",
                         "span_id", "parent_span_id", "job")
            span_doc = {
                "name": "serving.request",
                "start": 0.0,
                "duration": round(record["latency_ms"] / 1000.0, 6),
                "attrs": {key: record[key] for key in attr_keys
                          if key in record},
                "children": [],
            }
            submission = self.jobs.get(record.get("job") or "")
            if submission is not None:
                span_doc["children"] = [
                    dict(doc) for doc in
                    getattr(submission, "spans", [])]
            spans.append(span_doc)
        return {
            "format": DEBUG_TRACE_FORMAT,
            "version": DEBUG_TRACE_VERSION,
            "trace_id": trace_id,
            "spans": spans,
        }

    async def _handle_solve(self, request: HttpRequest,
                            writer) -> None:
        """``POST /v1/solve``: admit, await completion, answer."""
        submission = self._admit(request)
        timeout = None
        if submission.deadline is not None:
            timeout = max(0.0, submission.deadline
                          - asyncio.get_running_loop().time())
        try:
            await asyncio.wait_for(submission.done.wait(), timeout)
        except asyncio.TimeoutError:
            submission.expire()
        if submission.status == "done":
            self.metrics.histogram("serving.solve.seconds").observe(
                submission.elapsed_ms() / 1000.0)
            write_json(writer, 200, submission.to_response())
            return
        error = submission.error or RequestError(
            "internal", f"job ended as {submission.status}")
        doc = error_envelope(error)
        doc["job"] = submission.id
        self.metrics.counter("serving.http.errors").inc()
        write_json(writer, error.http_status, doc)

    async def _route_job(self, request: HttpRequest, writer) -> None:
        parts = request.path.strip("/").split("/")
        # "/v1/jobs/{id}" -> [v1, jobs, id]; +"/events" -> 4 parts
        if len(parts) < 3 or len(parts) > 4:
            raise RequestError("not_found",
                               f"no route for {request.path!r}")
        submission = self.jobs.get(parts[2])
        if submission is None:
            raise RequestError("not_found",
                               f"unknown job {parts[2]!r}")
        request.job_id = submission.id
        if len(parts) == 4:
            if parts[3] != "events":
                raise RequestError("not_found",
                                   f"no route for {request.path!r}")
            self._require(request.method, "GET")
            await self._stream_events(submission, writer)
            return
        if request.method == "DELETE":
            was_live = submission.cancel()
            if was_live:
                self.metrics.counter("serving.jobs.cancelled").inc()
            write_json(writer, 200, submission.to_response())
            return
        self._require(request.method, "GET")
        write_json(writer, 200, submission.to_response())

    async def _stream_events(self, submission: Submission,
                             writer) -> None:
        """``GET /v1/jobs/{id}/events``: replay + live-tail NDJSON."""
        start_ndjson(writer, 200)
        send_ndjson_line(writer, {
            "format": EVENTS_FORMAT, "version": EVENTS_VERSION,
            "job": submission.id, "status": submission.status,
        })
        cursor = 0
        while True:
            limit = await submission.wait_events(cursor)
            for event in submission.events[cursor:limit]:
                send_ndjson_line(writer, {"job": submission.id,
                                          **event})
            cursor = limit
            try:
                await writer.drain()
            except Exception:  # noqa: BLE001 - client hung up
                return
            if submission.done.is_set() \
                    and cursor >= len(submission.events):
                return

    # -- mission sessions ----------------------------------------------

    def _open_session(self, request: HttpRequest, writer) -> None:
        """``POST /v1/sessions``: validate, register, acknowledge."""
        if self.batcher.draining:
            raise RequestError("shutting_down",
                               "server is draining; no new sessions")
        parsed = session_request_from_dict(request.json())
        options = SchedulerOptions(seed=parsed.seed) \
            if parsed.seed is not None else None
        try:
            config = SessionConfig(
                p_max=parsed.p_max, p_min=parsed.p_min,
                baseline=parsed.baseline, scheduler=parsed.scheduler,
                options=options, name=parsed.name)
            engine = MissionSession(config)
        except ReproError as exc:
            raise RequestError("bad_request", str(exc)) from exc
        self._session_counter += 1
        entry = _SessionEntry(f"s-{self._session_counter:06d}", engine)
        self.sessions[entry.id] = entry
        request.session_id = entry.id
        self.metrics.counter("session.opened").inc()
        self.metrics.gauge("session.live").set(
            sum(1 for e in self.sessions.values()
                if not e.session.closed))
        while len(self.sessions) > SESSION_RETENTION:
            evictable = [sid for sid, e in self.sessions.items()
                         if e.session.closed]
            if not evictable:
                break
            del self.sessions[evictable[0]]
        write_json(writer, 200, response_envelope(
            "open", session=entry.id, scheduler=parsed.scheduler,
            p_max=parsed.p_max, p_min=parsed.p_min, now=0))

    def _session_entry(self, session_id: str) -> _SessionEntry:
        entry = self.sessions.get(session_id)
        if entry is None:
            raise RequestError("not_found",
                               f"unknown session {session_id!r}")
        return entry

    async def _route_session(self, request: HttpRequest,
                             writer) -> None:
        parts = request.path.strip("/").split("/")
        # "/v1/sessions/{id}" -> 3 parts; +"/events" -> 4
        if len(parts) < 3 or len(parts) > 4:
            raise RequestError("not_found",
                               f"no route for {request.path!r}")
        entry = self._session_entry(parts[2])
        entry.touch()
        request.session_id = entry.id
        if len(parts) == 4:
            if parts[3] != "events":
                raise RequestError("not_found",
                                   f"no route for {request.path!r}")
            self._require(request.method, "POST")
            await self._session_events(entry, request, writer)
            return
        if request.method == "DELETE":
            async with entry.lock:
                was_open = not entry.session.closed
                entry.session.close()
                doc = entry.status_doc()
            if was_open:
                self.metrics.counter("session.closed").inc()
                self.metrics.gauge("session.live").set(
                    sum(1 for e in self.sessions.values()
                        if not e.session.closed))
            write_json(writer, 200, response_envelope("closed", **doc))
            return
        self._require(request.method, "GET")
        # Snapshot under the session lock: a command batch may be
        # mutating the engine in an executor thread right now, and
        # iterating its dicts mid-mutation would tear the document.
        async with entry.lock:
            status = "closed" if entry.session.closed else "open"
            doc = entry.status_doc()
        write_json(writer, 200, response_envelope(status, **doc))

    async def _session_events(self, entry: _SessionEntry,
                              request: HttpRequest, writer) -> None:
        """``POST /v1/sessions/{id}/events``: apply a command batch,
        streaming the session events each command produced as
        ``repro-session-event`` v1 NDJSON lines.

        The stream is: one header line, the event records in order
        (each stamped with the session id), and a terminal
        ``{"event": "end"}`` record carrying ``ok`` plus counts — so a
        stream without its ``end`` line is known-truncated.  A command
        that is *rejected by the mission* (infeasible arrival) is a
        normal ``reject`` event; a command the session cannot process
        at all (unknown task in a fault, clock moved backward, closed
        session) terminates the stream with an ``error`` record but
        leaves prior commands' effects in place.
        """
        commands = session_commands_from_dict(request.json())
        engine = entry.session
        loop = asyncio.get_running_loop()
        start_ndjson(writer, 200)
        send_ndjson_line(writer, {
            "format": SESSION_EVENT_FORMAT,
            "version": SESSION_EVENT_VERSION,
            "session": entry.id, "now": engine.now,
            "commands": len(commands),
        })
        sent = 0
        ok = True
        async with entry.lock:
            for command in commands:
                self.metrics.counter("session.commands").inc()
                try:
                    # Solves are CPU work; keep the loop responsive.
                    events = await loop.run_in_executor(
                        None, engine.apply, command)
                except ReproError as exc:
                    ok = False
                    self.metrics.counter("session.errors").inc()
                    send_ndjson_line(writer, {
                        "session": entry.id, "event": "error",
                        "code": "bad_request", "message": str(exc)})
                    break
                for event in events:
                    kind = event.get("event")
                    if kind in ("admit", "reject", "commit",
                                "replan"):
                        self.metrics.counter(
                            f"session.{kind}s").inc()
                    send_ndjson_line(writer, {"session": entry.id,
                                              **event})
                    sent += 1
                try:
                    await writer.drain()
                except Exception:  # noqa: BLE001 - client hung up
                    return
        entry.touch()  # a long batch should not read as idle time
        send_ndjson_line(writer, {
            "session": entry.id, "event": "end", "ok": ok,
            "now": engine.now, "events": sent,
            "admitted": len(engine.admitted),
            "rejected": len(engine.rejected),
        })
