"""Blocking client for the solve server — stdlib ``http.client`` only.

:class:`ServingClient` is both the reference implementation of the
wire protocol (``docs/serving.md``) and the transport behind
``repro-schedule submit``.  It opens one connection per request (the
server closes connections after each response, so there is no pooling
to manage) and raises :class:`ServingError` — carrying the documented
machine-readable error ``code`` — whenever the server answers with an
error envelope.

Typical use::

    from repro.serving import ServingClient

    client = ServingClient("http://127.0.0.1:8080")
    response = client.solve(problem)              # synchronous
    job = client.sweep(problem, budgets=[10, 12, 16],
                       levels=[4, 8])             # asynchronous
    for event in client.events(job["job"]):       # NDJSON live tail
        print(event)
    points = client.job(job["job"])["points"]
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Iterator, Mapping

from ..core.problem import SchedulingProblem
from ..errors import ReproError
from ..io.requests import (session_commands_to_dict,
                           session_request_to_dict,
                           solve_request_to_dict)
from ..obs import (TRACEPARENT_HEADER, current_trace_context,
                   format_traceparent, new_span_id, new_trace_id)

__all__ = ["ServingClient", "ServingError", "TruncatedStreamError"]


class ServingError(ReproError):
    """The server answered with a documented error envelope."""

    def __init__(self, code: str, message: str, http_status: int):
        super().__init__(f"[{code}] {message} (HTTP {http_status})")
        self.code = code
        self.http_status = http_status


class TruncatedStreamError(ServingError):
    """The NDJSON event stream ended without a terminal event.

    Every well-formed ``/v1/jobs/{id}/events`` stream closes with a
    ``{"event": "done", ...}`` record; a stream that ends without one
    (server killed mid-job, connection dropped, a record cut off
    mid-line) used to make :meth:`ServingClient.wait` fall through to
    a job lookup that could hang or ``KeyError``.  It now raises this
    typed error instead.  ``http_status`` is ``None`` — the failure is
    at the connection level, not an HTTP error envelope.
    """

    def __init__(self, job_id: str, events_seen: int,
                 reason: str = "stream closed"):
        ReproError.__init__(
            self,
            f"[truncated_stream] event stream for job {job_id} ended "
            f"without a terminal 'done' event after {events_seen} "
            f"event(s): {reason}")
        self.code = "truncated_stream"
        self.http_status = None
        self.job_id = job_id
        self.events_seen = events_seen


class ServingClient:
    """Talk to a :class:`~repro.serving.server.SolveServer`."""

    def __init__(self, base_url: str = "http://127.0.0.1:8080",
                 timeout: float = 60.0):
        parsed = urllib.parse.urlparse(base_url)
        if parsed.scheme not in ("http", ""):
            raise ReproError(
                f"only http:// servers are supported, "
                f"got {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8080
        self.timeout = timeout
        #: The client's own distributed trace: every request carries a
        #: ``traceparent`` header so the server's spans stitch under
        #: one trace id per client.  An ambient context (set by
        #: ``BatchRunner`` when this client is a ``RemoteBackend``
        #: transport) takes precedence over the client's own.
        self.trace_context: "tuple[str, str | None]" = \
            (new_trace_id(), None)

    # -- low-level -----------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _traceparent(self) -> str:
        """The outgoing trace header: ambient context if one is
        installed, else this client's own trace, with a fresh span id
        per request (that span id is what the server records as the
        request's ``parent_span_id``)."""
        ambient = current_trace_context()
        trace_id = (ambient or self.trace_context)[0]
        return format_traceparent(trace_id, new_span_id())

    def request(self, method: str, path: str,
                body: "Mapping[str, Any] | None" = None) \
            -> "tuple[int, Any]":
        """One round trip; returns ``(http_status, parsed_body)``.

        JSON responses are parsed; anything else comes back as text.
        Does not raise on error statuses — :meth:`checked` does.
        """
        connection = self._connect()
        try:
            payload = None
            headers = {TRACEPARENT_HEADER: self._traceparent()}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return response.status, json.loads(raw)
            return response.status, raw.decode("utf-8")
        finally:
            connection.close()

    def checked(self, method: str, path: str,
                body: "Mapping[str, Any] | None" = None) -> Any:
        """Like :meth:`request` but raises :class:`ServingError` on
        an error envelope (any non-2xx status)."""
        status, document = self.request(method, path, body)
        if 200 <= status < 300:
            return document
        if isinstance(document, Mapping) \
                and isinstance(document.get("error"), Mapping):
            error = document["error"]
            raise ServingError(error.get("code", "internal"),
                               error.get("message", ""), status)
        raise ServingError("internal", str(document)[:200], status)

    # -- API surface ---------------------------------------------------

    def solve(self, problem: SchedulingProblem,
              p_max: "float | None" = None,
              p_min: "float | None" = None,
              seed: "int | None" = None,
              deadline_ms: "int | None" = None,
              freq_levels: "list[float] | None" = None) \
            -> "dict[str, Any]":
        """Synchronous ``POST /v1/solve``; returns the response
        document (its ``points`` list holds the solved rows).

        ``freq_levels`` attaches a uniform DVFS ladder server-side
        (bumps the request to schema version 2 — pre-DVFS servers
        reject it with ``unsupported_version``).
        """
        body = solve_request_to_dict(problem, p_max=p_max,
                                     p_min=p_min, seed=seed,
                                     deadline_ms=deadline_ms,
                                     freq_levels=freq_levels)
        return self.checked("POST", "/v1/solve", body)

    def sweep(self, problem: SchedulingProblem,
              budgets: "list[float] | None" = None,
              levels: "list[float] | None" = None,
              points: "list[tuple[float, float]] | None" = None,
              seed: "int | None" = None,
              deadline_ms: "int | None" = None,
              freq_levels: "list[float] | None" = None) \
            -> "dict[str, Any]":
        """Asynchronous ``POST /v1/sweep``; returns the ``202``
        acknowledgement (``{"job": "j-...", "status": "queued"}``)."""
        body = solve_request_to_dict(problem, budgets=budgets,
                                     levels=levels, points=points,
                                     seed=seed,
                                     deadline_ms=deadline_ms,
                                     freq_levels=freq_levels)
        return self.checked("POST", "/v1/sweep", body)

    def job(self, job_id: str) -> "dict[str, Any]":
        """``GET /v1/jobs/{id}``: the job's status document."""
        return self.checked("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> "dict[str, Any]":
        """``DELETE /v1/jobs/{id}``: cancel; returns the status."""
        return self.checked("DELETE", f"/v1/jobs/{job_id}")

    def events(self, job_id: str) -> "Iterator[dict[str, Any]]":
        """``GET /v1/jobs/{id}/events``: yield NDJSON events live.

        The first yielded record is the stream header
        (``{"format": "repro-serve-events", "version": 1, ...}``);
        the stream ends after the job's ``done`` event.  A stream that
        closes *without* a ``done`` record — or that ends in a record
        cut off mid-line — raises :class:`TruncatedStreamError` after
        yielding every complete event, so callers never mistake a dead
        server for a finished job.
        """
        connection = self._connect()
        events_seen = 0
        terminal = False
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events",
                headers={TRACEPARENT_HEADER: self._traceparent()})
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    document = json.loads(raw)
                except ValueError:
                    document = {}
                error = document.get("error") or {}
                raise ServingError(error.get("code", "internal"),
                                   error.get("message", ""),
                                   response.status)
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    raise TruncatedStreamError(
                        job_id, events_seen,
                        "last record cut off mid-line") from None
                events_seen += 1
                if isinstance(event, dict) \
                        and event.get("event") == "done":
                    terminal = True
                yield event
            if not terminal:
                raise TruncatedStreamError(job_id, events_seen)
        finally:
            connection.close()

    def wait(self, job_id: str) -> "dict[str, Any]":
        """Follow the event stream until the job resolves, then
        return its final status document."""
        for _event in self.events(job_id):
            pass
        return self.job(job_id)

    # -- mission sessions ----------------------------------------------

    def open_session(self, p_max: float, p_min: float = 0.0,
                     baseline: float = 0.0,
                     scheduler: str = "min_power",
                     seed: "int | None" = None,
                     name: "str | None" = None,
                     tags: "Mapping[str, Any] | None" = None) \
            -> "dict[str, Any]":
        """``POST /v1/sessions``: open an online mission session.

        Returns the acknowledgement document; its ``session`` field is
        the id every other session call takes.
        """
        body = session_request_to_dict(p_max, p_min=p_min,
                                       baseline=baseline,
                                       scheduler=scheduler, seed=seed,
                                       name=name, tags=tags)
        return self.checked("POST", "/v1/sessions", body)

    def session(self, session_id: str) -> "dict[str, Any]":
        """``GET /v1/sessions/{id}``: the session status document."""
        return self.checked("GET", f"/v1/sessions/{session_id}")

    def close_session(self, session_id: str) -> "dict[str, Any]":
        """``DELETE /v1/sessions/{id}``: close; returns the status."""
        return self.checked("DELETE", f"/v1/sessions/{session_id}")

    def session_send(self, session_id: str,
                     commands: "list[Mapping[str, Any]]") \
            -> "Iterator[dict[str, Any]]":
        """``POST /v1/sessions/{id}/events``: apply commands, yield
        the resulting ``repro-session-event`` v1 NDJSON records.

        The first yielded record is the stream header; the last is the
        terminal ``{"event": "end", "ok": ...}`` record.  A stream
        that closes without its ``end`` line raises
        :class:`TruncatedStreamError` after yielding every complete
        record.
        """
        body = json.dumps(
            session_commands_to_dict(commands)).encode("utf-8")
        connection = self._connect()
        events_seen = 0
        terminal = False
        try:
            connection.request(
                "POST", f"/v1/sessions/{session_id}/events",
                body=body,
                headers={TRACEPARENT_HEADER: self._traceparent(),
                         "Content-Type": "application/json"})
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    document = json.loads(raw)
                except ValueError:
                    document = {}
                error = document.get("error") or {}
                raise ServingError(error.get("code", "internal"),
                                   error.get("message", ""),
                                   response.status)
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    raise TruncatedStreamError(
                        session_id, events_seen,
                        "last record cut off mid-line") from None
                events_seen += 1
                if isinstance(event, dict) \
                        and event.get("event") == "end":
                    terminal = True
                yield event
            if not terminal:
                raise TruncatedStreamError(session_id, events_seen)
        finally:
            connection.close()

    def session_apply(self, session_id: str,
                      commands: "list[Mapping[str, Any]]") \
            -> "list[dict[str, Any]]":
        """Like :meth:`session_send` but collects the whole stream and
        raises :class:`ServingError` if it ended with an ``error``
        record instead of cleanly."""
        events = list(self.session_send(session_id, commands))
        for event in events:
            if event.get("event") == "error":
                raise ServingError(event.get("code", "internal"),
                                   event.get("message", ""), 200)
        return events

    def healthz(self) -> "dict[str, Any]":
        """``GET /healthz``."""
        return self.checked("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics``: the raw Prometheus exposition text."""
        return self.checked("GET", "/metrics")

    def debug_requests(self) -> "dict[str, Any]":
        """``GET /v1/debug/requests``: the flight-recorder rings."""
        return self.checked("GET", "/v1/debug/requests")

    def debug_trace(self, trace_id: str) -> "dict[str, Any]":
        """``GET /v1/debug/trace/{trace_id}``: one stitched trace."""
        return self.checked("GET", f"/v1/debug/trace/{trace_id}")
