"""Client side of the shared schedule-store service.

Two layers:

* :class:`StoreClient` — a thin blocking wrapper over the
  ``repro-store-request``/``repro-store-response`` v1 protocol
  (one ``http.client`` connection per call, like
  :class:`~repro.serving.client.ServingClient`).
* :class:`RemoteScheduleStore` — a drop-in
  :class:`~repro.engine.schedule_store.ScheduleStore` subclass that a
  ``serve --store-url`` instance attaches to its engine.  Local state
  acts as a read-through cache: probes try the local bucket first,
  then ask the service and absorb any hit; priming asks the service
  before paying for a timing solve; locally-journaled inserts are
  pushed back with :meth:`RemoteScheduleStore.sync` after every batch.

Failure posture: the shared store is an *accelerator*, never a
correctness dependency — every remote error degrades to local-only
behaviour (counted in ``sync_errors``), and a failed push re-journals
its delta so the next sync retries it.  Results are bit-identical with
or without the service (DESIGN.md 5e).
"""

from __future__ import annotations

from typing import Any, Mapping

from ..engine.schedule_store import (CERTIFIED_STAGE, ScheduleStore,
                                     StoredSchedule)
from ..errors import SerializationError
from ..io.requests import store_request_to_dict
from .client import ServingClient, ServingError

__all__ = ["StoreClient", "RemoteScheduleStore"]


class StoreClient:
    """Talk to a :class:`~repro.serving.store_service.StoreService`."""

    def __init__(self, base_url: str = "http://127.0.0.1:8090",
                 timeout: float = 30.0):
        #: The underlying transport; reused for connection handling,
        #: traceparent propagation, and error-envelope decoding.
        self.transport = ServingClient(base_url, timeout=timeout)

    def get_range(self, base_key: str,
                  p_max: "float | None" = None,
                  p_min: "float | None" = None) -> "dict[str, Any]":
        """``POST /v1/store/get-range``; omit both powers for a prime
        probe.  Returns the response document (``hit`` boolean plus,
        on a hit, the ``{name, entry}`` payload)."""
        body = store_request_to_dict("get-range", base_key=base_key,
                                     p_max=p_max, p_min=p_min)
        return self.transport.checked("POST", "/v1/store/get-range",
                                      body)

    def put_delta(self, delta: "list[Mapping[str, Any]]") \
            -> "dict[str, Any]":
        """``POST /v1/store/put-delta``: merge a drained journal."""
        body = store_request_to_dict("put-delta", delta=delta)
        return self.transport.checked("POST", "/v1/store/put-delta",
                                      body)

    def snapshot(self) -> "dict[str, Any]":
        """``GET /v1/store/snapshot``: the full store document."""
        return self.transport.checked("GET", "/v1/store/snapshot")

    def healthz(self) -> "dict[str, Any]":
        return self.transport.checked("GET", "/healthz")

    def metrics_text(self) -> str:
        return self.transport.checked("GET", "/metrics")


class RemoteScheduleStore(ScheduleStore):
    """A ScheduleStore backed by a shared store service.

    The local superclass state is a cache of what this instance has
    seen (its own inserts plus absorbed remote hits); the service
    holds the union across instances.  Three overrides carry the whole
    protocol:

    * :meth:`probe` — local-first, then remote ``get-range``; a remote
      hit is absorbed locally (without re-journaling, so it is never
      echoed back) and served.
    * :meth:`ensure_primed` — ask the service for the certified
      timing-stage entry before paying for the priming solve; on a
      remote miss, prime locally and push immediately so sibling
      instances skip the solve.
    * :meth:`sync` — drain the local journal into ``put-delta``; on
      failure the delta is re-journaled for the next sync.

    Every remote failure (connection refused, 5xx, bad document)
    increments ``sync_errors`` and falls back to purely local
    behaviour, so a dead store service costs hit rate, not
    correctness.
    """

    #: Marks this store as service-backed; the serving batcher checks
    #: this to schedule a :meth:`sync` after each engine batch.
    remote = True

    def __init__(self, store_url: str, policy: str = "identical",
                 timeout: float = 30.0):
        super().__init__(policy=policy)
        self.client = StoreClient(store_url, timeout=timeout)
        self.store_url = store_url
        # Remote-protocol tallies; ``counters()`` extends the base
        # dict with them and ``absorb_store_stats`` folds them into a
        # server's /metrics under ``store.*``.
        self.remote_hits = 0
        self.remote_misses = 0
        self.pushed = 0
        self.pulled = 0
        self.sync_errors = 0

    # -- remote plumbing -----------------------------------------------

    def _absorb(self, base_key: str, name: str,
                entry: StoredSchedule) -> None:
        """Cache a remote entry locally without re-journaling it (the
        service already holds it; echoing it back would only cost a
        dedupe)."""
        if self.insert(base_key, entry, problem_name=name):
            self._journal.pop()
            self.inserted -= 1
        else:
            self.deduped -= 1
        if entry.stage == CERTIFIED_STAGE:
            self._primed.add(base_key)

    def _remote_lookup(self, base_key: str,
                       p_max: "float | None" = None,
                       p_min: "float | None" = None) \
            -> "StoredSchedule | None":
        """One guarded ``get-range`` round trip; absorbs any hit."""
        try:
            doc = self.client.get_range(base_key, p_max=p_max,
                                        p_min=p_min)
        except (ServingError, OSError):
            self.sync_errors += 1
            return None
        if not isinstance(doc, Mapping) or not doc.get("hit"):
            self.remote_misses += 1
            return None
        try:
            entry = StoredSchedule.from_dict(doc["entry"])
        except (SerializationError, KeyError, TypeError):
            self.sync_errors += 1
            return None
        self.remote_hits += 1
        self._absorb(base_key, str(doc.get("name", "")), entry)
        return entry

    # -- ScheduleStore overrides ---------------------------------------

    def probe(self, base_key: str, p_max: float, p_min: float) \
            -> "StoredSchedule | None":
        local = super().probe(base_key, p_max, p_min)
        if local is not None:
            return local
        remote = self._remote_lookup(base_key, p_max=p_max,
                                     p_min=p_min)
        if remote is None:
            return None
        # Re-probe through the policy filter: the service answered
        # under *its* policy, which should match ours, but the local
        # probe is the single source of eligibility truth.
        return super().probe(base_key, p_max, p_min)

    def ensure_primed(self, problem, options=None,
                      kind: str = "sweep_point") -> str:
        base_key = self.base_key(problem, options, kind=kind)
        if base_key in self._primed:
            return base_key
        if self._remote_lookup(base_key) is not None:
            # Absorbed the certified entry; _absorb marked us primed.
            self.primes += 1
            return base_key
        result = super().ensure_primed(problem, options, kind=kind)
        # Push the fresh timing entry right away (not just at the next
        # batch sync) so sibling instances skip the priming solve.
        self.sync()
        return result

    def counters(self) -> "dict[str, int]":
        doc = super().counters()
        doc.update(remote_hits=self.remote_hits,
                   remote_misses=self.remote_misses,
                   pushed=self.pushed, pulled=self.pulled,
                   sync_errors=self.sync_errors)
        return doc

    # -- synchronisation -----------------------------------------------

    def sync(self) -> int:
        """Push locally-journaled inserts to the service.

        Returns the number of records pushed.  On failure the delta is
        re-journaled so the next sync retries it (the merge dedupes,
        so double-push is harmless).
        """
        delta = self.drain_journal()
        if not delta:
            return 0
        try:
            self.client.put_delta(delta)
        except (ServingError, OSError):
            self.sync_errors += 1
            for record in delta:
                self._journal.append(
                    (record["base_key"], record["name"],
                     StoredSchedule.from_dict(record["entry"])))
            return 0
        self.pushed += len(delta)
        return len(delta)

    def pull(self) -> int:
        """Warm the local cache from a full service snapshot.

        Called once at server startup; returns entries absorbed (0 on
        any failure — warming is best-effort).
        """
        try:
            doc = self.client.snapshot()
            remote = ScheduleStore.from_dict(doc["store"],
                                             policy=self.policy)
        except (ServingError, OSError, SerializationError, KeyError,
                TypeError):
            self.sync_errors += 1
            return 0
        absorbed = 0
        for base_key, bucket in remote.problems.items():
            for entry in bucket.entries:
                before = len(self)
                self._absorb(base_key, bucket.name, entry)
                absorbed += len(self) - before
        self.pulled += absorbed
        return absorbed
