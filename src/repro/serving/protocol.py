"""Minimal HTTP/1.1 over asyncio streams — the serving wire layer.

The front-end speaks a deliberately small subset of HTTP/1.1, enough
for the documented API (``docs/serving.md``) and nothing more:

* request bodies must carry ``Content-Length`` (chunked uploads are
  rejected as ``bad_request``);
* every response closes the connection (``Connection: close``), so
  there is no keep-alive or pipelining state to get wrong — clients
  open one connection per request, which the stdlib ``http.client``
  does naturally;
* responses are either a complete JSON document (``Content-Length``
  set) or an NDJSON stream (no length; the closing connection
  delimits the stream).

Parsing is size-capped everywhere (request line, header block, body)
so a misbehaving client costs bounded memory.  All failures surface as
:class:`~repro.io.requests.RequestError` values carrying the
documented machine-readable error code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..io.requests import RequestError

__all__ = ["HttpRequest", "read_request", "write_json",
           "write_error", "start_ndjson", "send_ndjson_line",
           "MAX_HEADER_BYTES", "DEFAULT_MAX_BODY"]

#: Cap on the request line + header block, bytes.
MAX_HEADER_BYTES = 16 * 1024
#: Default cap on a request body, bytes (a problem document of
#: thousands of tasks fits comfortably).
DEFAULT_MAX_BODY = 4 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split path, headers, raw body."""

    method: str
    path: str
    headers: "dict[str, str]" = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body as JSON; ``bad_request`` on a parse failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError("bad_request",
                               f"body is not valid JSON: {exc}") \
                from exc


async def read_request(reader,
                       max_body: int = DEFAULT_MAX_BODY) \
        -> "HttpRequest | None":
    """Parse one HTTP request off ``reader``.

    Returns ``None`` when the client closed the connection before
    sending anything; raises :class:`RequestError` for anything
    malformed or over-size.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteRead, LimitOverrun, reset
        name = type(exc).__name__
        if name == "IncompleteReadError" and not exc.partial:
            return None
        if name == "LimitOverrunError":
            raise RequestError("payload_too_large",
                               "header block exceeds the size cap") \
                from exc
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise RequestError("payload_too_large",
                           "header block exceeds the size cap")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise RequestError("bad_request",
                           f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise RequestError("bad_request",
                               f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise RequestError(
            "bad_request",
            "chunked request bodies are not supported; "
            "send Content-Length")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise RequestError(
                "bad_request",
                f"invalid Content-Length: {length_header!r}") from exc
        if length < 0:
            raise RequestError("bad_request",
                               f"invalid Content-Length: {length}")
        if length > max_body:
            raise RequestError(
                "payload_too_large",
                f"body of {length} bytes exceeds the "
                f"{max_body}-byte cap")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:  # noqa: BLE001 - client went away
                return None
    return HttpRequest(method=method, path=path, headers=headers,
                       body=body)


def _head(status: int, content_type: str,
          length: "int | None") -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_json(writer, status: int,
               document: "Mapping[str, Any]") -> None:
    """Send a complete JSON response (does not close the writer)."""
    payload = (json.dumps(document, sort_keys=False) + "\n") \
        .encode("utf-8")
    writer.write(_head(status, "application/json", len(payload)))
    writer.write(payload)
    writer.last_status = status


def write_text(writer, status: int, text: str,
               content_type: str = "text/plain; version=0.0.4") \
        -> None:
    """Send a complete plain-text response (e.g. ``/metrics``)."""
    payload = text.encode("utf-8")
    writer.write(_head(status, content_type, len(payload)))
    writer.write(payload)
    writer.last_status = status


def write_error(writer, error: RequestError) -> None:
    """Send the documented error envelope for ``error``."""
    from ..io.requests import error_envelope
    write_json(writer, error.http_status, error_envelope(error))


def start_ndjson(writer, status: int = 200) -> None:
    """Open an NDJSON stream (connection-close delimited)."""
    writer.write(_head(status, "application/x-ndjson", None))
    writer.last_status = status


def send_ndjson_line(writer, record: "Mapping[str, Any]") -> None:
    """Append one NDJSON record to an open stream."""
    writer.write((json.dumps(record, sort_keys=False) + "\n")
                 .encode("utf-8"))
