"""Micro-batching: coalesce solve requests into engine batches.

The serving front-end never hands a request to the engine one point at
a time.  Accepted submissions queue up; a single dispatch loop pulls up
to ``max_batch`` solve jobs off the queue head — waiting at most
``max_wait_ms`` for stragglers to coalesce when the queue holds fewer —
and executes them as *one* :meth:`BatchRunner.arun` batch.  That is
what makes the shared :class:`~repro.engine.cache.ResultCache` and
:class:`~repro.engine.schedule_store.ScheduleStore` effective across
clients: identical points dedup inside the batch, repeat points hit the
cache, and covered points are served from a stored schedule's validity
rectangle without running the pipeline (paper Section 5.3).

One batch is in flight at a time (the runner's cache and store are not
guarded for concurrent runs); large sweeps simply span several
consecutive batches.  Per-point results stream back through the
runner's ``on_result`` hook and fan out to each submission's NDJSON
event feed as they land.

Backpressure and lifecycle are explicit:

* a bounded queue — admission fails with ``queue_full`` (HTTP 429)
  when the undispatched-job count would exceed ``queue_limit``;
* per-request deadlines — a submission whose deadline passes before
  its jobs are dispatched resolves as ``deadline_exceeded`` (504)
  without consuming solver time;
* cancellation — a cancelled submission resolves immediately; results
  of already-running jobs are discarded on arrival;
* graceful drain — :meth:`Batcher.drain` stops admission
  (``shutting_down``, 503) but runs every already-accepted job to
  completion before the loop exits, so accepted work is never lost.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

from ..engine import BatchRunner, SolveJob
from ..io.requests import (RequestError, SolvedPoint, SolveRequest,
                           response_envelope)
from ..obs import (absorb_cache_stats, absorb_store_stats,
                   reset_trace_context, set_trace_context)
from ..scheduling.base import SchedulerOptions

__all__ = ["BatchingConfig", "Submission", "Batcher"]

#: Submission status values as they appear on the wire.
STATUSES = ("queued", "running", "done", "cancelled", "error")


@dataclass
class BatchingConfig:
    """Tunable knobs of the micro-batching loop.

    Attributes
    ----------
    max_batch:
        Most solve jobs dispatched as one engine batch.
    max_wait_ms:
        How long a non-full batch waits for more requests to coalesce
        before dispatching what it has.  ``0`` dispatches immediately
        (lowest latency, least batching).
    queue_limit:
        Bound on undispatched queued jobs; admission beyond it is
        rejected with ``queue_full`` (HTTP 429).
    """

    max_batch: int = 16
    max_wait_ms: float = 10.0
    queue_limit: int = 256

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")


class Submission:
    """One accepted request moving through the serving pipeline."""

    def __init__(self, job_id: str, request: SolveRequest,
                 loop: asyncio.AbstractEventLoop):
        self.id = job_id
        self.request = request
        options = None
        if request.seed is not None:
            options = SchedulerOptions(seed=request.seed)
        self.jobs = [
            SolveJob(
                problem=request.problem.with_power_constraints(
                    p_max, p_min),
                kind="sweep_point", options=options)
            for p_max, p_min in request.points]
        self.results: "list[SolvedPoint | None]" = \
            [None] * len(self.jobs)
        self.status = "queued"
        self.error: "RequestError | None" = None
        self._loop = loop
        self._t0 = time.perf_counter()
        self.accepted_unix = time.time()
        self.deadline: "float | None" = None
        if request.deadline_ms is not None:
            self.deadline = loop.time() + request.deadline_ms / 1000.0
        self.dispatched = 0
        self.completed = 0
        #: Distributed-trace identity of the HTTP request that created
        #: this submission (set by the server at admission): the trace
        #: id, the *client's* span id from the traceparent header, and
        #: the server-side request span id engine spans hang beneath.
        self.trace_id: "str | None" = None
        self.parent_span_id: "str | None" = None
        self.request_span_id: "str | None" = None
        #: ``engine.run`` span documents attributed to this submission
        #: — one per batch that dispatched any of its jobs, each
        #: holding only this submission's ``engine.job`` children
        #: (see :meth:`Batcher._attribute_spans`).
        self.spans: "list[dict]" = []
        self.events: "list[dict]" = []
        self.done = asyncio.Event()
        self._new_event = asyncio.Event()
        self.add_event("accepted", points=len(self.jobs))

    # -- event feed ----------------------------------------------------

    def elapsed_ms(self) -> int:
        return int(round(1000 * (time.perf_counter() - self._t0)))

    def add_event(self, name: str, **fields) -> None:
        """Append one NDJSON event and wake every streamer."""
        self.events.append({"event": name, "at_ms": self.elapsed_ms(),
                            **fields})
        self._new_event.set()
        self._new_event = asyncio.Event()

    async def wait_events(self, cursor: int) -> int:
        """Block until there are events beyond ``cursor``."""
        while cursor >= len(self.events) and not self.done.is_set():
            waiter = self._new_event
            done_waiter = asyncio.ensure_future(self.done.wait())
            event_waiter = asyncio.ensure_future(waiter.wait())
            try:
                await asyncio.wait({done_waiter, event_waiter},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                done_waiter.cancel()
                event_waiter.cancel()
        return len(self.events)

    # -- lifecycle -----------------------------------------------------

    def expired(self) -> bool:
        return (self.deadline is not None
                and self._loop.time() >= self.deadline)

    def finish(self, status: str,
               error: "RequestError | None" = None) -> None:
        if self.status in ("done", "cancelled", "error"):
            return
        self.status = status
        self.error = error
        fields = {"status": status}
        if error is not None:
            fields["error"] = error.to_dict()
        self.add_event("done", **fields)
        self.done.set()

    def cancel(self) -> bool:
        """Request cancellation; True if the job was still live."""
        if self.status in ("done", "cancelled", "error"):
            return False
        self.finish("cancelled")
        return True

    def expire(self) -> None:
        self.finish("error", RequestError(
            "deadline_exceeded",
            f"deadline of {self.request.deadline_ms} ms passed "
            f"after {self.elapsed_ms()} ms"))

    def record_result(self, index: int, job_result) -> None:
        """Fold one engine :class:`JobResult` back into the
        submission (called on the event loop)."""
        self.completed += 1
        if self.status in ("cancelled", "error"):
            return  # discarded: the client already got its answer
        value = job_result.value
        reuse = (job_result.stats or {}).get("reuse") or {}
        if job_result.ok and value is not None:
            point = SolvedPoint.from_sweep_point(
                value, cached=job_result.cached,
                reused=bool(reuse.get("hit")))
        else:
            # Engine-level failure (worker death, timeout after
            # retries): degrade to an infeasible point, like sweep.
            p_max, p_min = self.request.points[index]
            point = SolvedPoint(p_max=p_max, p_min=p_min,
                                feasible=False)
            self.add_event("job-failed", index=index,
                           error=job_result.error or "unknown")
        self.results[index] = point
        self.add_event("point", index=index, point=point.to_dict())
        if self.completed == len(self.jobs):
            self.finish("done")

    # -- wire form -----------------------------------------------------

    def to_response(self) -> "dict":
        """The ``repro-solve-response`` document for this submission."""
        if self.status == "error" and self.error is not None:
            doc = response_envelope("error", job=self.id,
                                    error=self.error.to_dict())
        else:
            doc = response_envelope(self.status, job=self.id)
        doc["points_total"] = len(self.jobs)
        doc["points_done"] = sum(
            1 for result in self.results if result is not None)
        if self.status == "done":
            doc["points"] = [result.to_dict()
                             for result in self.results]
            doc["cached"] = sum(1 for r in self.results if r.cached)
            doc["reused"] = sum(1 for r in self.results if r.reused)
        doc["elapsed_ms"] = self.elapsed_ms()
        return doc


class Batcher:
    """The dispatch loop between submissions and the engine."""

    def __init__(self, runner: BatchRunner,
                 config: "BatchingConfig | None" = None,
                 registry=None):
        self.runner = runner
        self.config = config or BatchingConfig()
        self.registry = registry
        self.draining = False
        self.batches = 0
        self._queue: "deque[Submission]" = deque()
        self._queued_jobs = 0
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task: "asyncio.Task | None" = None
        self._stopping = False

    # -- admission -----------------------------------------------------

    @property
    def queued_jobs(self) -> int:
        """Undispatched jobs currently awaiting a batch."""
        return self._queued_jobs

    def submit(self, submission: Submission) -> None:
        """Admit a submission, or raise the documented rejection."""
        if self.draining:
            raise RequestError(
                "shutting_down",
                "server is draining and no longer accepts jobs")
        if self._queued_jobs + len(submission.jobs) \
                > self.config.queue_limit:
            raise RequestError(
                "queue_full",
                f"queue holds {self._queued_jobs} jobs; admitting "
                f"{len(submission.jobs)} more would exceed the "
                f"limit of {self.config.queue_limit}")
        self._queue.append(submission)
        self._queued_jobs += len(submission.jobs)
        self._idle.clear()
        if self.registry is not None:
            self.registry.gauge("serving.queue.depth") \
                .set(self._queued_jobs)
        self._wakeup.set()

    # -- loop ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop() \
                .create_task(self._run())

    async def drain(self) -> None:
        """Stop admission, run every accepted job, stop the loop."""
        self.draining = True
        self._wakeup.set()
        await self._idle.wait()
        self._stopping = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def _run(self) -> None:
        cfg = self.config
        while True:
            if not self._queue:
                self._idle.set()
                if self._stopping:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            self._idle.clear()
            if (self._queued_jobs < cfg.max_batch
                    and cfg.max_wait_ms > 0 and not self.draining):
                # Micro-batch window: let concurrent clients coalesce
                # into one engine batch before dispatching.
                wait_started = asyncio.get_running_loop().time()
                while (self._queued_jobs < cfg.max_batch
                       and not self.draining):
                    remaining = cfg.max_wait_ms / 1000.0 \
                        - (asyncio.get_running_loop().time()
                           - wait_started)
                    if remaining <= 0:
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(),
                                               remaining)
                    except asyncio.TimeoutError:
                        break
            batch = self._take_batch()
            if batch:
                await self._dispatch(batch)

    def _take_batch(self) \
            -> "list[tuple[Submission, int, SolveJob]]":
        """Pop up to ``max_batch`` jobs from the queue head.

        Cancelled and deadline-expired submissions are resolved here,
        costing no solver time; a large submission may contribute only
        part of its jobs and stay queued for the next batch.
        """
        entries: "list[tuple[Submission, int, SolveJob]]" = []
        while self._queue and len(entries) < self.config.max_batch:
            submission = self._queue[0]
            if submission.status == "cancelled":
                self._queued_jobs -= (len(submission.jobs)
                                      - submission.dispatched)
                self._queue.popleft()
                continue
            if submission.expired():
                self._queued_jobs -= (len(submission.jobs)
                                      - submission.dispatched)
                self._queue.popleft()
                submission.expire()
                if self.registry is not None:
                    self.registry.counter("serving.jobs.expired") \
                        .inc()
                continue
            if submission.status == "queued":
                submission.status = "running"
            take = min(self.config.max_batch - len(entries),
                       len(submission.jobs) - submission.dispatched)
            for offset in range(take):
                index = submission.dispatched + offset
                entries.append((submission, index,
                                submission.jobs[index]))
            submission.dispatched += take
            self._queued_jobs -= take
            if submission.dispatched == len(submission.jobs):
                self._queue.popleft()
        if self.registry is not None:
            self.registry.gauge("serving.queue.depth") \
                .set(self._queued_jobs)
        return entries

    async def _dispatch(self, entries) -> None:
        """Run one engine batch; stream results back per submission."""
        loop = asyncio.get_running_loop()
        self.batches += 1
        batch_number = self.batches
        jobs = [job for _submission, _index, job in entries]
        submissions = list(
            {id(s): s for s, _i, _j in entries}.values())
        for submission in submissions:
            share = sum(1 for s, _i, _j in entries
                        if s is submission)
            submission.add_event("dispatched", batch=batch_number,
                                 size=len(jobs), share=share)

        def on_result(job_result, _entries=entries) -> None:
            submission, index, _job = _entries[job_result.position]
            loop.call_soon_threadsafe(submission.record_result,
                                      index, job_result)

        cache_before = self.runner.cache.stats() \
            if self.runner.cache is not None else None
        store_before = self.runner.store.counters() \
            if self.runner.store is not None else None
        # A batch holding exactly one submission runs under that
        # request's distributed trace: the ambient context makes the
        # runner (and any remote/shard backend beneath it) stitch its
        # spans under the request's trace id instead of minting one.
        # Mixed batches get a runner-minted trace; span attribution
        # below still hands each submission its own engine.job spans.
        owner = submissions[0] \
            if len(submissions) == 1 and submissions[0].trace_id \
            else None
        token = set_trace_context(
            (owner.trace_id, owner.request_span_id)) \
            if owner is not None else None
        t0 = time.perf_counter()
        try:
            results = await self.runner.arun(jobs,
                                             on_result=on_result)
        finally:
            if token is not None:
                reset_trace_context(token)
        elapsed_s = time.perf_counter() - t0
        del results  # per-job delivery already happened via on_result
        self._attribute_spans(entries, batch_number)
        if getattr(self.runner.store, "remote", False):
            # Service-backed store: push this batch's journal to the
            # shared store before the counter absorb below, so the
            # pushed/sync_errors tallies land in the same snapshot.
            await asyncio.to_thread(self.runner.store.sync)
        if self.registry is not None:
            self.registry.counter("serving.batches").inc()
            self.registry.histogram("serving.batch.jobs") \
                .observe(len(jobs))
            self.registry.histogram("serving.batch.seconds") \
                .observe(elapsed_s)
            if cache_before is not None \
                    and self.runner.cache is not None:
                absorb_cache_stats(self.registry, cache_before,
                                   self.runner.cache.stats())
            if store_before is not None \
                    and self.runner.store is not None:
                absorb_store_stats(self.registry, store_before,
                                   self.runner.store.counters())

    def _attribute_spans(self, entries, batch_number: int) -> None:
        """Slice the batch's engine span tree per submission.

        The runner's ``engine.run`` root carries one ``engine.job``
        child per *solved* batch position (cache/reuse hits have no
        span), and batch positions are exactly the entry order this
        dispatch submitted.  Each submission gets a copy of the run
        span holding only its own job children, tagged with the batch
        number — the flight recorder's ``/v1/debug/trace/{id}``
        endpoint hangs these under the request span.
        """
        trace = self.runner.last_trace
        if trace is None or not trace.spans:
            return
        root = trace.spans[0]
        by_position: "dict[int, dict]" = {}
        for child in root.get("children") or []:
            position = (child.get("attrs") or {}).get("position")
            if position is not None:
                by_position[position] = child
        children: "dict[int, list]" = {}
        for position, (submission, _index, _job) \
                in enumerate(entries):
            child = by_position.get(position)
            if child is not None:
                children.setdefault(id(submission), []).append(child)
        attrs = dict(root.get("attrs") or {})
        attrs["batch"] = batch_number
        for submission in {id(s): s for s, _i, _j in entries}.values():
            submission.spans.append({
                "name": root.get("name", "engine.run"),
                "start": root.get("start", 0.0),
                "duration": root.get("duration", 0.0),
                "attrs": dict(attrs),
                "children": children.get(id(submission), []),
            })
