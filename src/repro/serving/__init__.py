"""Async solve-serving front-end over :mod:`repro.engine`.

The ROADMAP's online-serving layer: a stdlib-``asyncio`` HTTP server
that accepts solve requests, coalesces them into engine batches, and
streams results and progress events back — turning the batch engine
(:class:`~repro.engine.runner.BatchRunner`), the observability layer
(:mod:`repro.obs`), and the validity-range schedule store (paper
Section 5.3) into a system that serves many concurrent clients from
one shared cache.

The pieces:

* :class:`~repro.serving.server.SolveServer` /
  :class:`~repro.serving.server.ServingConfig` — the HTTP front-end:
  ``POST /v1/solve`` (synchronous), ``POST /v1/sweep``
  (asynchronous + NDJSON event stream), job status/cancel,
  ``/healthz``, Prometheus ``/metrics``;
* :class:`~repro.serving.batching.Batcher` /
  :class:`~repro.serving.batching.BatchingConfig` — the micro-batching
  loop (``max_batch``, ``max_wait_ms``, bounded queue with 429
  backpressure, per-request deadlines, cancellation, graceful drain);
* :class:`~repro.serving.client.ServingClient` — the blocking
  reference client (``repro-schedule submit`` uses it);
* online mission sessions (``POST /v1/sessions``) — the server hosts
  :class:`~repro.online.session.MissionSession` engines behind the
  wire protocol: tasks arrive over time, each is admitted or rejected
  against the power/timing constraints, and the command stream's
  effects come back as a ``repro-session-event`` v1 NDJSON stream
  (``docs/online.md``);
* :mod:`repro.serving.protocol` — the size-capped HTTP/1.1 subset the
  server speaks;
* the horizontal-scaling tier (``docs/scaling.md``):
  :class:`~repro.serving.router.Router` — a front-door that
  load-balances solve/sweep/session-open traffic over N serve
  instances with retry-and-reassignment, sticky id-prefixed routing
  for jobs and sessions, and health-gated membership — and
  :class:`~repro.serving.store_service.StoreService` /
  :class:`~repro.serving.store_client.RemoteScheduleStore` — a shared
  schedule-store service (``repro-store-request`` v1) so every
  instance reuses every other's validity-range entries.

Wire documents (``repro-solve-request``/``-response`` v1, the
``repro-serve-events`` v1 stream) live in :mod:`repro.io.requests`;
the operator's guide — every endpoint, schema, error code and tuning
knob, conformance-tested against a live server — is
``docs/serving.md``.

Run one::

    repro-schedule serve --port 8080 --reuse-schedules

    # or programmatically
    import asyncio
    from repro.serving import ServingConfig, SolveServer

    async def main():
        server = SolveServer(ServingConfig(port=8080))
        await server.start()
        await server.serve_forever()

    asyncio.run(main())
"""

from .batching import Batcher, BatchingConfig, Submission
from .client import ServingClient, ServingError, TruncatedStreamError
from .protocol import HttpRequest
from .router import Router, RouterConfig
from .server import ServingConfig, SolveServer
from .store_client import RemoteScheduleStore, StoreClient
from .store_service import StoreService, StoreServiceConfig

__all__ = [
    "Batcher",
    "BatchingConfig",
    "HttpRequest",
    "RemoteScheduleStore",
    "Router",
    "RouterConfig",
    "ServingClient",
    "ServingConfig",
    "ServingError",
    "SolveServer",
    "StoreClient",
    "StoreService",
    "StoreServiceConfig",
    "Submission",
    "TruncatedStreamError",
]
