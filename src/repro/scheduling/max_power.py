"""Max-power scheduler — the paper's Fig. 4 algorithm.

Takes a time-valid schedule and eliminates every *power spike*
(interval where the profile exceeds the hard budget ``P_max``) by
delaying simultaneously-active tasks, guided by slack-based heuristics:

1. at the earliest spike time ``t``, order the active tasks by slack
   ``Delta_sigma`` and delay the largest-slack task first;
2. bound each delay distance by the task's slack (when positive) and by
   its execution time;
3. when only zero-slack tasks remain, a delay cascades through the
   graph (``reschedule`` in the paper): successors shift right via the
   longest-path recomputation, and the remaining simultaneous tasks are
   locked at their current start times so the repair stays local;
4. on a dead end, backtrack and delay a different task first.

Delays and locks are materialized as graph edges (release-time edges
tagged ``"delay"``/``"lock"``), so the resulting schedule is always the
plain ASAP solution of the decorated graph — time-validity is inherited
from the constraint propagation rather than re-proved per move.

Two quality extensions beyond the pseudo-code (both measurable via
:class:`~repro.scheduling.base.SchedulerOptions` and the ablation
bench):

* **compaction** — a left-shift pass that relaxes scheduler-added delay
  edges after the spikes are gone, reclaiming idle time the greedy
  repair strands at the front of the schedule;
* **multi-start** — the repair is restarted a few times with perturbed
  tie-breaking (the paper's ordering is slack-based but ties are
  unspecified), and the best schedule by (finish time, energy cost)
  wins.

Like the paper's algorithm this remains a *heuristic, bounded* search:
it does not enumerate all partial orders, so in rare cases it can fail
even though a valid schedule exists (the optimal-gap benchmark
quantifies this).  It raises :class:`SchedulingFailure` in that case.
"""

from __future__ import annotations

import random
import sys

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..core.slack import slack
from ..core.task import ANCHOR_NAME
from ..errors import SchedulingFailure
from ..obs import OBS
from .base import ScheduleResult, SchedulerOptions, SchedulerStats, \
    make_result
from .timing import TimingScheduler, asap_schedule

__all__ = ["MaxPowerScheduler", "max_power_schedule"]


class MaxPowerScheduler:
    """Slack-heuristic spike elimination (paper Fig. 4)."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()
        self._salt: "dict[str, float]" = {}
        self._rng = random.Random(self.options.seed)

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Produce a *valid* (time- and power-valid) schedule.

        Runs the timing scheduler first (as the paper's algorithm
        does), then removes spikes; with ``max_power_restarts > 1`` the
        repair is retried under perturbed tie-breaking and the best
        (finish time, energy cost) schedule is kept.  The returned
        result has ``stage="max_power"`` and carries the decorated
        graph in ``extra["graph"]``.
        """
        reasons = problem.feasible_power_check()
        if reasons:
            raise SchedulingFailure(
                "problem is power-infeasible: " + "; ".join(reasons))
        base_graph = problem.fresh_graph()
        timing = TimingScheduler(self.options)
        timing.schedule_graph(base_graph)  # adds serialization edges
        self.stats = SchedulerStats()
        self.stats.merge(timing.stats)

        best: "tuple[tuple[float, float], Schedule, ConstraintGraph] | None" \
            = None
        failures: "list[str]" = []

        def consider(schedule: Schedule, graph: ConstraintGraph) -> None:
            nonlocal best
            profile = PowerProfile.from_schedule(
                schedule, baseline=problem.total_baseline)
            key = (float(schedule.makespan),
                   profile.energy_above(problem.p_min))
            if best is None or key < best[0]:
                best = (key, schedule, graph)

        for variant in range(max(1, self.options.max_power_restarts)):
            graph = base_graph.copy()
            with OBS.span("sched.maxp.restart",
                          variant=variant) as restart_span:
                try:
                    schedule = self.eliminate_spikes(
                        graph, problem.p_max, problem.total_baseline,
                        variant=variant)
                except SchedulingFailure as exc:
                    restart_span.set(failed=True)
                    failures.append(str(exc))
                    continue
                restart_span.set(makespan=schedule.makespan)
            consider(schedule, graph)
            if best is not None and variant == 0:
                # The pure paper heuristic succeeded; further restarts
                # only matter when we are still failing or when the
                # caller asked for exploration.
                if self.options.max_power_restarts == 1:
                    break

        if self.options.serial_fallback:
            serial = self._serial_candidate(problem)
            if serial is not None:
                consider(*serial)

        if best is None:
            raise SchedulingFailure(
                f"max-power scheduler could not eliminate all spikes of "
                f"{problem.name!r} under P_max = {problem.p_max:g} W "
                f"({len(failures)} attempt(s); first failure: "
                f"{failures[0] if failures else 'n/a'})")
        _, schedule, graph = best
        result = make_result(problem, schedule, stats=self.stats,
                             stage="max_power")
        result.extra["graph"] = graph
        return result

    def _serial_candidate(self, problem: SchedulingProblem) \
            -> "tuple[Schedule, ConstraintGraph] | None":
        """The fully-serialized schedule as an extra candidate.

        In tightly power-bounded regimes (the rover's worst case) the
        best valid schedule *is* the serial one — the paper observes
        that its worst-case power-aware schedule coincides with JPL's
        serial schedule.  Greedy spike repair can strand idle time that
        the serial packing avoids, so the serial schedule competes in
        the candidate pool whenever it is power-valid.
        """
        from .serial import SerialScheduler  # local: avoid import cycle
        import dataclasses
        # The fallback is opportunistic: give it a small backtrack
        # budget so a serialization-hostile instance (max windows that
        # forbid a full serial order) fails fast instead of burning the
        # caller's time.
        options = dataclasses.replace(self.options, max_backtracks=200)
        try:
            result = SerialScheduler(options).solve(problem)
        except SchedulingFailure:
            return None
        profile = PowerProfile.from_schedule(
            result.schedule, baseline=problem.total_baseline)
        if not profile.is_power_valid(problem.p_max):
            return None
        return result.schedule, result.extra["graph"]

    # ------------------------------------------------------------------

    def eliminate_spikes(self, graph: ConstraintGraph, p_max: float,
                         baseline: float, variant: int = 0) -> Schedule:
        """Remove every spike from the ASAP schedule of ``graph``.

        The graph must already contain serialization edges (i.e. be the
        output of the timing scheduler).  On success the graph has been
        decorated with the delay/lock edges that realize the valid
        schedule.  ``variant > 0`` perturbs heuristic tie-breaking
        (multi-start).
        """
        self._attempts = self.options.max_spike_attempts
        self._rng = random.Random((self.options.seed, variant).__hash__())
        if variant == 0:
            self._salt = {}
        else:
            self._salt = {name: self._rng.random()
                          for name in graph.task_names()}
        # One recursion level per spike; deep schedules need headroom
        # beyond CPython's default limit.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 50_000))
        try:
            schedule = self._repair(graph, p_max, baseline)
        finally:
            sys.setrecursionlimit(limit)
        if schedule is None:
            raise SchedulingFailure(
                f"max-power scheduler could not eliminate all spikes of "
                f"{graph.name!r} under P_max = {p_max:g} W "
                f"(attempt budget {self.options.max_spike_attempts})")
        if self.options.compaction:
            schedule = self.compact(graph, p_max, baseline)
        return schedule

    def _repair(self, graph: ConstraintGraph, p_max: float,
                baseline: float) -> "Schedule | None":
        """Recursive spike repair; None signals a failed branch."""
        schedule = asap_schedule(graph, probe=True)
        if schedule is None:
            return None
        profile = PowerProfile.from_schedule(schedule, baseline=baseline)
        spike = profile.first_spike(p_max)
        if spike is None:
            return schedule
        if self._attempts <= 0:
            return None

        t = spike.start
        candidates = self._ordered_active(schedule, t)
        # Branch on which task is delayed *first*; the greedy inner loop
        # handles the rest.  The first branch is the pure paper
        # heuristic (largest slack first).
        for lead in range(len(candidates)):
            if self._attempts <= 0:
                return None
            self._attempts -= 1
            self.stats.spike_attempts += 1
            token = graph.checkpoint()
            cleared = self._clear_time(graph, t, p_max, baseline,
                                       prefer=candidates[lead])
            if cleared:
                self.stats.spikes_removed += 1
                solved = self._repair(graph, p_max, baseline)
                if solved is not None:
                    return solved
            graph.rollback(token)
        return None

    # ------------------------------------------------------------------

    def _ordered_active(self, schedule: Schedule, t: int) -> "list[str]":
        """Active tasks at ``t`` in heuristic delay order.

        Paper heuristic: largest slack first (ties broken by smaller
        power, then by name — or by the multi-start salt).  With
        ``slack_ordering`` off (ablation), a seeded random order is
        used instead.
        """
        names = [task.name for task in schedule.active_tasks(t)]
        if not self.options.slack_ordering:
            self._rng.shuffle(names)
            return names
        names.sort(key=lambda n: (-slack(schedule, n),
                                  schedule.graph.task(n).power,
                                  self._salt.get(n, 0.0), n))
        return names

    def _clear_time(self, graph: ConstraintGraph, t: int, p_max: float,
                    baseline: float, prefer: "str | None" = None) -> bool:
        """Delay tasks until the profile at slot ``t`` is within budget.

        Victims whose delay would contradict the constraints (positive
        cycle — e.g. a locked task) are skipped rather than failing the
        branch; the branch dead-ends only when no delayable active task
        remains.
        """
        guard = 4 * len(graph) + 8
        blocked: "set[str]" = set()
        zero_slack_delayed = False
        schedule = None
        while guard > 0:
            guard -= 1
            schedule = asap_schedule(graph, probe=True)
            if schedule is None:  # pragma: no cover - defensive
                return False
            power = baseline + schedule.power_at(t)
            if power <= p_max + PowerProfile.POWER_TOL:
                if zero_slack_delayed:
                    self._lock_remaining(graph, schedule, t)
                return True
            order = [n for n in self._ordered_active(schedule, t)
                     if n not in blocked]
            if not order:
                # Every active task is blocked — typically because an
                # earlier zero-slack repair locked it.  Paper Fig. 4:
                # when the recursion fails, "these locks will be undone
                # ... the algorithm will choose one task from them to
                # make further delay".  Unlock one and retry.
                if not self._unlock_one(graph, schedule, t, blocked):
                    return False
                continue
            victim = prefer if prefer in order else order[0]
            prefer = None
            target = self._segment_end(schedule, baseline, t)
            had_zero_slack = slack(schedule, victim) == 0
            token = graph.checkpoint()
            if not self._delay_past(graph, schedule, victim, t, target):
                blocked.add(victim)
                continue
            if asap_schedule(graph, probe=True) is None:
                graph.rollback(token)
                blocked.add(victim)
                continue
            self.stats.delays_applied += 1
            if had_zero_slack:
                zero_slack_delayed = True
        return False

    def _delay_past(self, graph: ConstraintGraph, schedule: Schedule,
                    name: str, t: int, target: int) -> bool:
        """Add a delay edge pushing ``name`` toward ``target`` (the end
        of the spiking profile segment, always > ``t``).

        The delay distance follows the paper's bounds: at most the
        task's slack when it has any, and at most its execution time
        (``delay_bound_by_duration``).  A partial delay (bounds shorter
        than needed) is allowed — the caller loops until the slot
        clears or the branch dead-ends.
        """
        task = graph.task(name)
        current = schedule.start(name)
        needed = max(target - current, t - current + 1)
        room = slack(schedule, name)
        if room > 0:
            distance = min(needed, room)
        else:
            distance = needed             # cascading reschedule
        if self.options.delay_bound_by_duration and task.duration > 0:
            distance = min(distance, max(task.duration, 1))
        if distance <= 0:
            return False
        return graph.add_edge(ANCHOR_NAME, name, current + distance,
                              tag="delay")

    @staticmethod
    def _segment_end(schedule: Schedule, baseline: float, t: int) -> int:
        """End of the profile segment containing ``t`` — the natural
        landing point for a delayed task (just past the moment where
        the power composition changes)."""
        profile = PowerProfile.from_schedule(schedule, baseline=baseline)
        for t0, t1, _ in profile.segments:
            if t0 <= t < t1:
                return t1
        return t + 1

    def _unlock_one(self, graph: ConstraintGraph, schedule: Schedule,
                    t: int, blocked: "set[str]") -> bool:
        """Remove the start-time lock of one task active at ``t``.

        Only scheduler-added ``"lock"`` max edges are lifted — user
        deadlines are never touched.  ``weaken_edge`` (not plain
        removal) matters here: a lock that landed on a task already
        carrying a *tighter user start deadline* overwrote it in the
        edge store, and removing the pair outright would silently drop
        the user's deadline with the lock.  Weakening restores it.
        Returns True when a lock was lifted (the task becomes a delay
        candidate again).
        """
        for name in self._ordered_active(schedule, t):
            if graph.edge_tag(name, ANCHOR_NAME) == "lock":
                graph.weaken_edge(name, ANCHOR_NAME)
                blocked.discard(name)
                return True
        return False

    def _lock_remaining(self, graph: ConstraintGraph, schedule: Schedule,
                        t: int) -> None:
        """Lock the start times of the tasks still active at ``t``.

        After a cascading (zero-slack) delay the paper pins the
        remaining simultaneous tasks so later repairs do not silently
        shift them; the locks are release-time+deadline edge pairs and
        roll back with the branch on failure.
        """
        for task in schedule.active_tasks(t):
            graph.lock_start(task.name, schedule.start(task.name))

    # ------------------------------------------------------------------
    # compaction (left shift of scheduler-added delays)
    # ------------------------------------------------------------------

    #: Edge tags the compaction pass is allowed to relax.
    _RELAXABLE_TAGS = frozenset({"delay", "gapfill", "lock"})

    def compact(self, graph: ConstraintGraph, p_max: float,
                baseline: float) -> Schedule:
        """Left-shift compaction of scheduler-added delays.

        Visits tasks in start-time order and, for each anchor release
        edge the spike repair added, tries to relax it: first full
        removal, then (if that reopens a spike) the earliest
        power-valid start among the profile's segment boundaries.
        Every accepted relaxation keeps the schedule valid and never
        increases the finish time, so the loop converges.
        """
        while True:
            schedule = asap_schedule(graph)
            if not self._compact_round(graph, schedule, p_max, baseline):
                return schedule

    def _compact_round(self, graph: ConstraintGraph, schedule: Schedule,
                       p_max: float, baseline: float) -> bool:
        """One pass over all tasks; True if anything moved."""
        makespan = schedule.makespan
        order = sorted(schedule, key=lambda n: (schedule.start(n), n))
        moved = False
        for name in order:
            tag = graph.edge_tag(ANCHOR_NAME, name)
            if tag not in self._RELAXABLE_TAGS:
                continue
            if self._relax_release(graph, name, p_max, baseline,
                                   makespan):
                moved = True
        return moved

    def _relax_release(self, graph: ConstraintGraph, name: str,
                       p_max: float, baseline: float,
                       makespan: int) -> bool:
        """Try to move one task earlier by weakening its release edge."""
        release = graph.separation(ANCHOR_NAME, name)
        tag = graph.edge_tag(ANCHOR_NAME, name)
        token = graph.checkpoint()
        # Weaken, don't remove: the delay edge may have overwritten a
        # user release on the same (anchor, task) pair — restore it so
        # compaction never shifts a task before its user release.
        graph.weaken_edge(ANCHOR_NAME, name)
        trial = asap_schedule(graph, probe=True)
        if trial is None:              # pragma: no cover - defensive
            graph.rollback(token)
            return False
        earliest = trial.start(name)
        if earliest >= release:
            graph.rollback(token)
            return False
        profile = PowerProfile.from_schedule(trial, baseline=baseline)
        if trial.makespan <= makespan and profile.is_power_valid(p_max):
            return True
        # Full removal reopens a spike: try intermediate starts at the
        # profile's change points, earliest first.
        boundaries = sorted({t0 for t0, _, _ in profile.segments
                             if earliest < t0 < release})
        for start in boundaries:
            graph.rollback(token)
            graph.weaken_edge(ANCHOR_NAME, name)
            graph.add_edge(ANCHOR_NAME, name, start, tag=tag)
            trial = asap_schedule(graph, probe=True)
            if trial is None:           # pragma: no cover - defensive
                continue
            trial_profile = PowerProfile.from_schedule(
                trial, baseline=baseline)
            if trial.makespan <= makespan \
                    and trial_profile.is_power_valid(p_max):
                return True
        graph.rollback(token)
        return False


def max_power_schedule(problem: SchedulingProblem,
                       options: "SchedulerOptions | None" = None) \
        -> ScheduleResult:
    """Convenience wrapper: timing + spike elimination in one call."""
    return MaxPowerScheduler(options).solve(problem)
