"""Simulated-annealing schedule improver.

The paper's pipeline is constructive: serialize, delay spikes away,
fill gaps.  Each stage only ever *delays* tasks, so the final schedule
lives in the neighbourhood of the ASAP solution and a serialization
order chosen early is never revisited.  Section 5.3 concedes that the
optimal schedule "should examine all valid partial orderings" and that
heuristic scan orders only explore a few.

This module adds the classic escape hatch: a simulated-annealing local
search over *complete* schedules, free to move any task anywhere
(including reordering same-resource tasks), with full validity checked
per move.  It optimizes the paper's lexicographic preference —
finish time first, then energy cost ``Ec(P_min)`` — and never returns
anything worse than its starting point.

Use it as a polish pass after the pipeline, or from any valid schedule
(e.g. the serial baseline) when the pipeline's heuristics disappoint;
``bench_annealing.py`` measures what the extra CPU time buys.
"""

from __future__ import annotations

import math
import random

from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..core.validation import check_time_valid
from ..errors import ReproError
from .base import ScheduleResult, SchedulerStats, make_result

__all__ = ["AnnealingImprover", "anneal"]


class AnnealingImprover:
    """Lexicographic (makespan, energy-cost) simulated annealing."""

    def __init__(self, iterations: int = 3000,
                 initial_temperature: float = 8.0,
                 cooling: float = 0.999, seed: int = 2001,
                 allow_longer: bool = False):
        if iterations < 1:
            raise ReproError(
                f"iterations must be >= 1, got {iterations}")
        if not 0 < cooling < 1:
            raise ReproError(
                f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise ReproError("initial_temperature must be positive")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed
        self.allow_longer = allow_longer
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------

    def improve(self, problem: SchedulingProblem,
                schedule: Schedule) -> ScheduleResult:
        """Anneal from a *valid* starting schedule.

        Raises :class:`~repro.errors.ValidationError` (via the
        validity check) if the start schedule is invalid; returns the
        best schedule found (never worse than the start in the
        lexicographic order).
        """
        self.stats = SchedulerStats()
        # Rebind the start times to the problem's pristine graph:
        # schedules coming out of the pipeline carry scheduler
        # decorations (serialization chains, delay edges) that would
        # otherwise freeze the very orderings annealing exists to
        # revisit.  Resource exclusivity is still enforced by the
        # validity check.
        schedule = Schedule(problem.graph, schedule.as_dict())
        self._validate(problem, schedule, strict=True)
        rng = random.Random(self.seed)
        names = problem.graph.task_names()
        if not names:
            return make_result(problem, schedule, stats=self.stats,
                               stage="annealed")

        current = schedule
        current_key = self._key(problem, current)
        best, best_key = current, current_key
        horizon_cap = max(current.makespan, 1)
        temperature = self.initial_temperature

        for _ in range(self.iterations):
            candidate = self._propose(problem, current, names, rng,
                                      horizon_cap)
            if candidate is None:
                temperature *= self.cooling
                continue
            if not self._validate(problem, candidate, strict=False):
                self.stats.gap_fill_rejected += 1
                temperature *= self.cooling
                continue
            key = self._key(problem, candidate)
            delta = self._scalar(key) - self._scalar(current_key)
            if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-9)):
                current, current_key = candidate, key
                self.stats.gap_fill_moves += 1
                if key < best_key:
                    best, best_key = candidate, key
            temperature *= self.cooling

        result = make_result(problem, best, stats=self.stats,
                             stage="annealed")
        result.extra["start_key"] = self._key(problem, schedule)
        result.extra["best_key"] = best_key
        return result

    # ------------------------------------------------------------------

    def _propose(self, problem, schedule, names, rng, horizon_cap) \
            -> "Schedule | None":
        """One random neighbour: jitter or jump a single task."""
        name = rng.choice(names)
        duration = problem.graph.task(name).duration
        limit = horizon_cap if self.allow_longer \
            else max(horizon_cap - duration, 0)
        if rng.random() < 0.5:
            delta = rng.choice((-3, -2, -1, 1, 2, 3))
            new_start = schedule.start(name) + delta
        else:
            new_start = rng.randint(0, max(limit, 0))
        if new_start < 0 or new_start == schedule.start(name):
            return None
        if not self.allow_longer and new_start + duration > horizon_cap:
            return None
        return schedule.with_start(name, new_start)

    def _validate(self, problem, schedule, strict: bool) -> bool:
        report = check_time_valid(schedule)
        if report.ok:
            profile = PowerProfile.from_schedule(
                schedule, baseline=problem.baseline)
            if profile.is_power_valid(problem.p_max):
                return True
            if strict:
                from ..errors import ValidationError
                raise ValidationError(
                    "annealing needs a power-valid starting schedule")
            return False
        if strict:
            report.raise_if_failed()
        return False

    def _key(self, problem, schedule) -> "tuple[int, float]":
        profile = PowerProfile.from_schedule(schedule,
                                             baseline=problem.baseline)
        return (schedule.makespan,
                round(profile.energy_above(problem.p_min), 9))

    @staticmethod
    def _scalar(key: "tuple[int, float]") -> float:
        makespan, cost = key
        return makespan * 1e6 + cost


def anneal(problem: SchedulingProblem, schedule: Schedule,
           iterations: int = 3000, seed: int = 2001) -> ScheduleResult:
    """Convenience wrapper for :class:`AnnealingImprover`."""
    return AnnealingImprover(iterations=iterations,
                             seed=seed).improve(problem, schedule)
