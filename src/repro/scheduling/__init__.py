"""Scheduling algorithms (paper Section 5) and baselines.

The paper's pipeline is ``TimingScheduler`` -> ``MaxPowerScheduler`` ->
``MinPowerScheduler``, wrapped by :class:`PowerAwareScheduler` /
:func:`schedule`.  Baselines for the evaluation are the fully-serial
JPL-style scheduler, a greedy power-capped list scheduler, and an
exhaustive optimal scheduler for small instances.  The runtime layer
reuses statically-computed schedules across environment changes.
"""

from .annealing import AnnealingImprover, anneal
from .base import (ScheduleResult, SchedulerOptions, SchedulerStats,
                   make_result)
from .dvs import CPU_RESOURCE, DvsScheduler, dvs_schedule
from .freq_select import FreqSelectScheduler, freq_select_schedule
from .heuristics import PRESETS, preset, preset_names
from .list_scheduler import GreedyListScheduler, greedy_schedule
from .max_power import MaxPowerScheduler, max_power_schedule
from .min_power import GapFillConfig, MinPowerScheduler, min_power_schedule
from .optimal import OptimalScheduler, optimal_schedule
from .power_aware import PipelineResult, PowerAwareScheduler, schedule
from .runtime import (RuntimeScheduler, ScheduleEntry, ScheduleTable,
                      in_validity_range)
from .serial import SerialScheduler, serial_schedule
from .timing import TimingScheduler, asap_schedule, timing_schedule

__all__ = [
    "AnnealingImprover",
    "CPU_RESOURCE",
    "DvsScheduler",
    "FreqSelectScheduler",
    "anneal",
    "freq_select_schedule",
    "GapFillConfig",
    "GreedyListScheduler",
    "dvs_schedule",
    "MaxPowerScheduler",
    "MinPowerScheduler",
    "OptimalScheduler",
    "PRESETS",
    "PipelineResult",
    "PowerAwareScheduler",
    "RuntimeScheduler",
    "ScheduleEntry",
    "ScheduleResult",
    "ScheduleTable",
    "SchedulerOptions",
    "SchedulerStats",
    "SerialScheduler",
    "TimingScheduler",
    "asap_schedule",
    "greedy_schedule",
    "in_validity_range",
    "make_result",
    "max_power_schedule",
    "min_power_schedule",
    "optimal_schedule",
    "preset",
    "preset_names",
    "schedule",
    "serial_schedule",
    "timing_schedule",
]
