"""Exhaustive optimal scheduler (branch & bound, small instances).

Section 5.3 of the paper notes that a cost-optimal schedule "should
examine all valid partial orderings of tasks, which will increase the
complexity of computation to an exponential order" — which is exactly
what this module does, deliberately, for small instances.  It exists to
*measure* the paper's heuristics, not to replace them:

* the ``bench_optimal_gap`` benchmark reports how close the three-stage
  pipeline gets to the true optimum on random graphs;
* tests use it as an oracle for the heuristics' validity claims
  (e.g. "the max-power scheduler may fail even though a valid schedule
  exists" — the oracle finds those cases).

Search: depth-first over tasks in a fixed topological-ish order; each
task is assigned a start time from its currently-feasible window
(propagated by longest paths over the graph plus lock edges).  Pruning:

* constraint propagation — a positive cycle kills the branch;
* power feasibility — the partial profile must stay under ``P_max``;
* bound — a branch is cut when its lower bound on the objective is no
  better than the incumbent.

Objectives: ``"makespan"`` (minimize finish time), ``"energy_cost"``
(minimize ``Ec(P_min)`` given a horizon), or ``"lexicographic"``
(makespan first, then cost) which mirrors the paper's "same performance,
less energy" preference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.graph import ConstraintGraph
from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..core.validation import check_power_valid
from ..errors import (InfeasibleError, ReproError,
                      SchedulingFailure)
from .base import ScheduleResult, SchedulerStats, make_result

__all__ = ["OptimalScheduler", "optimal_schedule"]

_OBJECTIVES = ("makespan", "energy_cost", "lexicographic")


@dataclass
class _SearchState:
    """Mutable search bookkeeping shared across the DFS."""

    best_key: "tuple[float, ...] | None" = None
    best_starts: "dict[str, int] | None" = None
    nodes: int = 0


class OptimalScheduler:
    """Branch-and-bound start-time enumeration."""

    def __init__(self, objective: str = "lexicographic",
                 horizon: "int | None" = None,
                 max_nodes: int = 2_000_000):
        if objective not in _OBJECTIVES:
            raise ReproError(
                f"unknown objective {objective!r}; pick from {_OBJECTIVES}")
        self.objective = objective
        self.horizon = horizon
        self.max_nodes = max_nodes
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Exhaustively find the objective-optimal valid schedule.

        Raises :class:`InfeasibleError` when no valid schedule exists
        within the horizon (this *is* a proof, unlike the heuristic
        pipeline's :class:`SchedulingFailure`).
        """
        graph = problem.fresh_graph()
        horizon = self.horizon or self._default_horizon(graph)
        names = self._order(graph)
        state = _SearchState()
        self.stats = SchedulerStats()
        self._dfs(problem, graph, names, 0, horizon, state)
        if state.best_starts is None:
            if state.nodes >= self.max_nodes:
                raise SchedulingFailure(
                    f"exhaustive search hit the node budget "
                    f"({self.max_nodes}) before finding any valid "
                    f"schedule for {problem.name!r} — no infeasibility "
                    "proof")
            raise InfeasibleError(
                f"no valid schedule exists for {problem.name!r} within "
                f"horizon {horizon} (exhaustive search, "
                f"{state.nodes} nodes)")
        schedule = Schedule(problem.graph, state.best_starts)
        result = make_result(problem, schedule, stats=self.stats,
                             stage="optimal")
        result.extra["nodes"] = state.nodes
        result.extra["horizon"] = horizon
        # Optimality is only *proved* when the search ran to completion;
        # hitting the node budget leaves the incumbent a best-effort.
        result.extra["proven"] = state.nodes < self.max_nodes
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _default_horizon(graph: ConstraintGraph) -> int:
        """Serial-sum horizon: enough for any reasonable schedule."""
        total = sum(t.duration for t in graph.tasks())
        est = longest_paths(graph).distance
        longest = max([est[n] + graph.task(n).duration
                       for n in graph.task_names()] or [0])
        return max(total, longest)

    @staticmethod
    def _order(graph: ConstraintGraph) -> "list[str]":
        """Assignment order: ASAP-sorted for fail-first propagation."""
        est = longest_paths(graph).distance
        return sorted(graph.task_names(), key=lambda n: (est[n], n))

    def _dfs(self, problem, graph, names, depth, horizon, state) -> None:
        if state.nodes >= self.max_nodes:
            return
        if depth == len(names):
            self._record(problem, graph, names, state)
            return
        result = longest_paths(graph, probe=True)
        if result is None:
            return
        dist = result.distance
        name = names[depth]
        task = graph.task(name)
        latest = horizon - task.duration
        if dist[name] > latest:
            return
        for start in range(dist[name], latest + 1):
            if state.nodes >= self.max_nodes:
                return
            state.nodes += 1
            if not self._promising(problem, graph, names, depth, state,
                                    dist, start):
                continue
            token = graph.checkpoint()
            try:
                graph.lock_start(name, start)
            except ReproError:
                graph.rollback(token)
                continue
            self._dfs(problem, graph, names, depth + 1, horizon, state)
            graph.rollback(token)

    def _promising(self, problem, graph, names, depth, state, dist,
                   start) -> bool:
        """Cheap branch bound: optimistic objective vs incumbent."""
        if state.best_key is None:
            return True
        # Optimistic makespan: already-forced finish of assigned tasks
        # and ASAP finish of the rest (cannot get shorter by assigning).
        lb_makespan = 0
        for n in names:
            lb_makespan = max(lb_makespan,
                              dist[n] + graph.task(n).duration)
        lb_makespan = max(lb_makespan,
                          start + graph.task(names[depth]).duration)
        if self.objective == "makespan":
            return (lb_makespan,) < state.best_key
        if self.objective == "lexicographic":
            return (lb_makespan, 0.0) <= (state.best_key[0], float("inf"))
        return True  # energy cost has no cheap monotone bound here

    def _record(self, problem, graph, names, state) -> None:
        """A complete assignment reached: validate and score it."""
        result = longest_paths(graph, probe=True)
        if result is None:
            return  # the final lock contradicted a max separation
        dist = result.distance
        starts = {n: dist[n] for n in names}
        schedule = Schedule(graph, starts)
        report = check_power_valid(schedule, problem.p_max,
                                   baseline=problem.baseline)
        if not report.ok:
            return
        profile = PowerProfile.from_schedule(schedule,
                                             baseline=problem.baseline)
        cost = profile.energy_above(problem.p_min)
        makespan = schedule.makespan
        if self.objective == "makespan":
            key: "tuple[float, ...]" = (float(makespan),)
        elif self.objective == "energy_cost":
            key = (cost,)
        else:
            key = (float(makespan), cost)
        if state.best_key is None or key < state.best_key:
            state.best_key = key
            state.best_starts = starts


def optimal_schedule(problem: SchedulingProblem,
                     objective: str = "lexicographic",
                     horizon: "int | None" = None,
                     max_nodes: int = 2_000_000) -> ScheduleResult:
    """Convenience wrapper for :class:`OptimalScheduler`."""
    return OptimalScheduler(objective=objective, horizon=horizon,
                            max_nodes=max_nodes).solve(problem)
