"""Named heuristic presets for ablation studies.

Section 5 of the paper motivates several heuristic choices without
quantifying them individually; the ablation benchmark
(``benchmarks/bench_ablation_heuristics.py``) runs the pipeline under
these presets to measure each knob's contribution.  Presets are plain
:class:`~repro.scheduling.base.SchedulerOptions` factories so they can
also be used directly with any scheduler.
"""

from __future__ import annotations

from .base import SchedulerOptions

__all__ = ["PRESETS", "preset", "preset_names"]


def _paper_default(seed: int) -> SchedulerOptions:
    """All heuristics as published: slack ordering, duration-bounded
    delays, multi-scan gap filling over all order/slot combinations."""
    return SchedulerOptions(seed=seed)


def _random_selection(seed: int) -> SchedulerOptions:
    """Ablation of Section 5.2 case (1): replace slack-based victim
    ordering with random selection."""
    return SchedulerOptions(slack_ordering=False, seed=seed)


def _unbounded_delay(seed: int) -> SchedulerOptions:
    """Ablation: drop the delay-distance upper bound of one execution
    time (delays jump straight past the spike)."""
    return SchedulerOptions(delay_bound_by_duration=False, seed=seed)


def _single_scan(seed: int) -> SchedulerOptions:
    """Ablation of Section 5.3: a single forward gap-filling scan with
    the start-at-gap slot rule (no multi-heuristic search)."""
    return SchedulerOptions(min_power_scans=1,
                            scan_orders=("forward",),
                            slot_heuristics=("start_at_gap",),
                            seed=seed)


def _forward_only(seed: int) -> SchedulerOptions:
    """Ablation: multi-scan but only forward time order."""
    return SchedulerOptions(scan_orders=("forward",), seed=seed)


def _random_slots(seed: int) -> SchedulerOptions:
    """Ablation: gap filling with random slot placement only."""
    return SchedulerOptions(slot_heuristics=("random",), seed=seed)


#: Named heuristic configurations (the paper's default plus the
#: ablation variants); values are SchedulerOptions factories
#: taking a seed.
PRESETS = {
    "paper": _paper_default,
    "random-selection": _random_selection,
    "unbounded-delay": _unbounded_delay,
    "single-scan": _single_scan,
    "forward-only": _forward_only,
    "random-slots": _random_slots,
}


def preset(name: str, seed: int = 2001) -> SchedulerOptions:
    """Build the named preset's options."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return factory(seed)


def preset_names() -> "list[str]":
    """All preset names, paper default first."""
    return list(PRESETS)
