"""Min-power scheduler — the paper's Fig. 6 algorithm.

Takes a *valid* schedule (time-valid and under ``P_max``) and improves
its **min-power utilization** ``rho_sigma(P_min)`` by filling *power
gaps*: intervals where the profile drops below the free-power level
``P_min`` and renewable energy is being wasted.  A gap at time ``t`` is
filled by delaying some earlier-started task — within its slack, so no
other task moves — until it is active at ``t``.  A move is kept only if
the new schedule is still valid, finishes no later (the paper: each
improving scan delivers "the same performance with a reduced energy
cost"), and strictly improves utilization.

Since the total task energy is invariant under start-time moves,
maximizing utilization at a fixed finish time is exactly minimizing the
paper's energy cost ``Ec_sigma(P_min)``.

Finding the cost-optimal task order is exponential, so the paper scans
the schedule repeatedly under different heuristics; we reproduce the
three published knobs and take the best result across configurations:

* **scan order** over gap times: ``forward``, ``reverse``, ``random``;
* **slot choice** for the delayed task: start at the gap, right-align
  to the gap end, or a random feasible slot;
* **multiple scans**: keep re-scanning until a scan makes no move
  (new gaps/fillers appear after earlier moves).

The min-power constraint is soft: leftover gaps are tolerated.
"""

from __future__ import annotations

import itertools
import random

from ..core.graph import ConstraintGraph
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..core.slack import slack
from ..core.task import ANCHOR_NAME
from ..obs import OBS
from .base import ScheduleResult, SchedulerOptions, SchedulerStats, \
    make_result
from .max_power import MaxPowerScheduler
from .timing import asap_schedule

__all__ = ["MinPowerScheduler", "min_power_schedule", "GapFillConfig"]

#: Utilization must improve by more than this for a move to be kept.
_RHO_EPS = 1e-12


class GapFillConfig:
    """One heuristic configuration: (scan order, slot choice, seed)."""

    def __init__(self, scan_order: str, slot: str, seed: int):
        self.scan_order = scan_order
        self.slot = slot
        self.seed = seed

    def __repr__(self) -> str:
        return f"GapFillConfig({self.scan_order}, {self.slot})"


class MinPowerScheduler:
    """Multi-scan gap filling (paper Fig. 6)."""

    #: Upper bound on improving scans per configuration; each improving
    #: scan strictly raises utilization so this is a safety net, not a
    #: quality knob.
    MAX_SCANS_PER_CONFIG = 32

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Full pipeline: timing -> max power -> min power.

        Returns the best schedule across heuristic configurations with
        ``stage="min_power"``.
        """
        base = MaxPowerScheduler(self.options).solve(problem)
        self.stats = SchedulerStats()
        self.stats.merge(base.stats)
        return self.improve(problem, base)

    def improve(self, problem: SchedulingProblem,
                base: ScheduleResult) -> ScheduleResult:
        """Gap-fill an existing valid result (``base``).

        ``base.extra["graph"]`` must hold the decorated graph whose ASAP
        schedule is ``base.schedule`` (as produced by
        :class:`MaxPowerScheduler`).
        """
        base_graph: ConstraintGraph = base.extra["graph"]
        p_max, p_min = problem.p_max, problem.p_min
        baseline = problem.total_baseline

        best_schedule = base.schedule
        best_graph = base_graph
        best_rho = base.metrics.utilization
        best_config = None
        needs_work = p_min > 0 and best_rho < 1.0 - _RHO_EPS
        if needs_work:
            for config in self._configs():
                graph = base_graph.copy()
                with OBS.span("sched.minp.scan",
                              order=config.scan_order,
                              slot=config.slot) as scan_span:
                    schedule, rho = self._fill_gaps(graph, p_max, p_min,
                                                    baseline, config)
                    scan_span.set(rho=round(rho, 6))
                if rho > best_rho + _RHO_EPS:
                    best_schedule, best_graph, best_rho = \
                        schedule, graph, rho
                    best_config = config
                if best_rho >= 1.0 - _RHO_EPS:
                    break
        result = make_result(problem, best_schedule, stats=self.stats,
                             stage="min_power")
        result.extra["graph"] = best_graph
        result.extra["config"] = best_config
        return result

    # ------------------------------------------------------------------

    def _configs(self) -> "list[GapFillConfig]":
        """The heuristic configurations to try, paper default first."""
        combos = list(itertools.product(self.options.scan_orders,
                                        self.options.slot_heuristics))
        # Put the deterministic forward/start pairing first when present.
        combos.sort(key=lambda c: (c != ("forward", "start_at_gap"),))
        combos = combos[:max(1, self.options.min_power_scans)]
        return [GapFillConfig(order, slot, self.options.seed + i)
                for i, (order, slot) in enumerate(combos)]

    def _fill_gaps(self, graph: ConstraintGraph, p_max: float,
                   p_min: float, baseline: float,
                   config: GapFillConfig) -> "tuple[Schedule, float]":
        """Run repeated gap-filling scans under one configuration.

        Mutates ``graph`` (delay edges tagged ``"gapfill"``); returns
        the final schedule and its utilization.
        """
        rng = random.Random(config.seed)
        schedule = asap_schedule(graph)
        profile = PowerProfile.from_schedule(schedule, baseline=baseline)
        rho = _utilization(profile, p_min)
        for _ in range(self.MAX_SCANS_PER_CONFIG):
            self.stats.scans += 1
            moved = False
            gap_times = [gap.start for gap in profile.gaps(p_min)]
            if config.scan_order == "reverse":
                gap_times.reverse()
            elif config.scan_order == "random":
                rng.shuffle(gap_times)
            for t in gap_times:
                outcome = self._fill_one_gap(graph, schedule, profile,
                                             t, p_max, p_min, baseline,
                                             config, rng, rho)
                if outcome is not None:
                    schedule, profile, rho = outcome
                    moved = True
                    if rho >= 1.0 - _RHO_EPS:
                        return schedule, rho
            if not moved:
                break
        return schedule, rho

    def _fill_one_gap(self, graph, schedule, profile, t, p_max, p_min,
                      baseline, config, rng, rho_now):
        """Try to move one earlier task into the gap at time ``t``.

        Returns ``(schedule, profile, rho)`` on an accepted move, else
        None.  The gap may have moved or closed since the scan list was
        built; we re-read the profile and skip stale entries.
        """
        if profile.value(t) >= p_min - PowerProfile.POWER_TOL:
            return None
        makespan = schedule.makespan
        candidates = self._gap_candidates(graph, schedule, t)
        for name in candidates:
            window = self._slot_window(graph, schedule, name, t)
            if window is None:
                continue
            new_start = self._choose_slot(graph, window, name, t,
                                          profile, config, rng)
            token = graph.checkpoint()
            changed = graph.add_edge(ANCHOR_NAME, name, new_start,
                                     tag="gapfill")
            if not changed:
                graph.rollback(token)
                continue
            accepted = None
            trial = asap_schedule(graph, probe=True)
            if trial is not None and trial.makespan <= makespan:
                trial_profile = PowerProfile.from_schedule(
                    trial, baseline=baseline, horizon=makespan)
                if trial_profile.is_power_valid(p_max):
                    rho_new = _utilization(trial_profile, p_min)
                    if rho_new > rho_now + _RHO_EPS:
                        accepted = (trial, trial_profile, rho_new)
            if accepted is not None:
                self.stats.gap_fill_moves += 1
                return accepted
            self.stats.gap_fill_rejected += 1
            graph.rollback(token)
        return None

    def _gap_candidates(self, graph: ConstraintGraph,
                        schedule: Schedule, t: int) -> "list[str]":
        """Tasks that start before ``t`` and could be active at ``t``
        after a within-slack delay; nearest (latest-starting) first."""
        out = []
        for name, start in schedule.items():
            task = graph.task(name)
            if task.duration == 0 or task.power == 0 or start > t:
                continue
            if schedule.is_active(name, t):
                continue
            if slack(schedule, name) >= t - start - task.duration + 1:
                out.append((start, name))
        out.sort(key=lambda pair: (-pair[0], pair[1]))
        return [name for _, name in out]

    def _slot_window(self, graph: ConstraintGraph, schedule: Schedule,
                     name: str, t: int) -> "tuple[int, int] | None":
        """Feasible new-start interval making ``name`` active at ``t``.

        ``[lo, hi]`` with ``lo > sigma(name)`` (a real delay), bounded
        by the task's slack so nothing else moves.
        """
        task = graph.task(name)
        start = schedule.start(name)
        lo = max(start + 1, t - task.duration + 1)
        hi = min(t, start + slack(schedule, name))
        if lo > hi:
            return None
        return lo, hi

    def _choose_slot(self, graph, window, name, t, profile, config, rng) \
            -> int:
        """Pick the new start inside ``window`` per the slot heuristic."""
        lo, hi = window
        if config.slot == "start_at_gap":
            choice = t
        elif config.slot == "finish_at_gap_end":
            # Right-align the task to the end of the gap containing t.
            gap_end = self._gap_end(profile, t)
            choice = gap_end - graph.task(name).duration
        else:
            choice = rng.randint(lo, hi)
        return min(max(choice, lo), hi)

    @staticmethod
    def _gap_end(profile: PowerProfile, t: int) -> int:
        """End of the contiguous profile segment run containing ``t``
        whose power stays below the segment level at ``t`` + epsilon —
        conservatively, the end of the segment containing ``t``."""
        for t0, t1, _ in profile.segments:
            if t0 <= t < t1:
                return t1
        return t + 1


def _utilization(profile: PowerProfile, p_min: float) -> float:
    if p_min <= 0 or profile.horizon == 0:
        return 1.0
    return profile.energy_capped(p_min) / (p_min * profile.horizon)


def min_power_schedule(problem: SchedulingProblem,
                       options: "SchedulerOptions | None" = None) \
        -> ScheduleResult:
    """Convenience wrapper: the full three-stage pipeline."""
    return MinPowerScheduler(options).solve(problem)
