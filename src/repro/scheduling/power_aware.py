"""Top-level power-aware scheduling pipeline (paper Section 5).

``PowerAwareScheduler.solve`` runs the three incremental stages —
timing, max-power, min-power — and returns the final result together
with the intermediate stage results, so callers (examples, the Gantt
renderers, EXPERIMENTS.md) can show how the schedule evolves exactly as
Figs. 2 -> 5 -> 7 do for the paper's running example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.problem import SchedulingProblem
from .base import ScheduleResult, SchedulerOptions
from .max_power import MaxPowerScheduler
from .min_power import MinPowerScheduler
from .timing import TimingScheduler

__all__ = ["PowerAwareScheduler", "PipelineResult", "schedule"]


@dataclass
class PipelineResult:
    """The three stage results of one power-aware scheduling run."""

    timing: ScheduleResult
    max_power: ScheduleResult
    min_power: ScheduleResult

    @property
    def final(self) -> ScheduleResult:
        """The schedule to deploy: the min-power stage output."""
        return self.min_power

    def stage_rows(self) -> "list[dict]":
        """Per-stage metric rows (for reports and the Fig. 2/5/7 bench)."""
        rows = []
        for label, result in (("time-valid (Fig.2)", self.timing),
                              ("power-valid (Fig.5)", self.max_power),
                              ("improved (Fig.7)", self.min_power)):
            row = {"stage": label}
            row.update(result.metrics.row())
            rows.append(row)
        return rows


class PowerAwareScheduler:
    """Facade running timing -> max power -> min power."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Solve and return only the final result."""
        return self.solve_pipeline(problem).final

    def solve_pipeline(self, problem: SchedulingProblem) -> PipelineResult:
        """Solve and return all three stage results.

        The timing stage ignores power constraints entirely (its result
        may contain spikes, as Fig. 2 does); the max-power stage result
        is valid; the min-power stage result additionally maximizes
        utilization found across the heuristic configurations.
        """
        timing = TimingScheduler(self.options).solve(problem)
        max_power = MaxPowerScheduler(self.options).solve(problem)
        min_power = MinPowerScheduler(self.options).improve(
            problem, max_power)
        min_power.stats.merge(max_power.stats)
        return PipelineResult(timing=timing, max_power=max_power,
                              min_power=min_power)


def schedule(problem: SchedulingProblem,
             options: "SchedulerOptions | None" = None) -> ScheduleResult:
    """One-call public API: power-aware schedule for a problem."""
    return PowerAwareScheduler(options).solve(problem)
