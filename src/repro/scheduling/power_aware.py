"""Top-level power-aware scheduling pipeline (paper Section 5).

``PowerAwareScheduler.solve`` runs the three incremental stages —
timing, max-power, min-power — and returns the final result together
with the intermediate stage results, so callers (examples, the Gantt
renderers, EXPERIMENTS.md) can show how the schedule evolves exactly as
Figs. 2 -> 5 -> 7 do for the paper's running example.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.longest_path import lp_counter_snapshot, lp_counters_delta
from ..core.problem import SchedulingProblem
from ..obs import OBS
from .base import ScheduleResult, SchedulerOptions
from .max_power import MaxPowerScheduler
from .min_power import MinPowerScheduler
from .timing import TimingScheduler

__all__ = ["PowerAwareScheduler", "PipelineResult", "schedule"]


def _timed_stage(label: str, run) -> ScheduleResult:
    """Run one pipeline stage, recording wall time and cache activity.

    The stage's wall-clock seconds land in ``stats.stage_seconds[label]``
    and the longest-path solver's cache counters (exact hits /
    incremental propagations / full recomputes) observed during the
    stage are folded into the stage result's stats.  Under an enabled
    :mod:`repro.obs` session the stage also records a
    ``sched.stage.<label>`` span carrying the same counters.
    """
    snapshot = lp_counter_snapshot()
    with OBS.span(f"sched.stage.{label}") as stage_span:
        t0 = time.perf_counter()
        result: ScheduleResult = run()
        elapsed = time.perf_counter() - t0
        delta = lp_counters_delta(snapshot)
        stage_span.set(lp_cache_hits=delta["cache_hits"],
                       lp_incremental_runs=delta["incremental_runs"],
                       lp_full_runs=delta["full_runs"],
                       lp_log_evictions=delta["log_evictions"],
                       lp_kernel_runs=delta["kernel_runs"],
                       lp_state_restores=delta["state_restores"],
                       lp_warm_hits=delta["warm_hits"],
                       lp_probe_prunes=delta["probe_prunes"])
    stats = result.stats
    stats.stage_seconds[label] = \
        stats.stage_seconds.get(label, 0.0) + elapsed
    stats.lp_cache_hits += delta["cache_hits"]
    stats.lp_incremental_runs += delta["incremental_runs"]
    stats.lp_full_runs += delta["full_runs"]
    stats.lp_cache_log_evictions += delta["log_evictions"]
    stats.lp_kernel_runs += delta["kernel_runs"]
    stats.lp_state_restores += delta["state_restores"]
    stats.lp_warm_hits += delta["warm_hits"]
    stats.lp_probe_prunes += delta["probe_prunes"]
    return result


@dataclass
class PipelineResult:
    """The three stage results of one power-aware scheduling run.

    For problems whose tasks carry DVFS operating-point ladders, the
    run is fronted by a configuration search and ``freq_select`` holds
    that stage's result (the winning max-power evaluation, with the
    chosen per-task operating points in its ``extra``); it stays
    ``None`` for ordinary speed-fixed problems.
    """

    timing: ScheduleResult
    max_power: ScheduleResult
    min_power: ScheduleResult
    freq_select: "ScheduleResult | None" = None

    @property
    def final(self) -> ScheduleResult:
        """The schedule to deploy: the min-power stage output."""
        return self.min_power

    def stage_rows(self) -> "list[dict]":
        """Per-stage metric rows (for reports and the Fig. 2/5/7 bench)."""
        rows = []
        for label, result in (("time-valid (Fig.2)", self.timing),
                              ("power-valid (Fig.5)", self.max_power),
                              ("improved (Fig.7)", self.min_power)):
            row = {"stage": label}
            row.update(result.metrics.row())
            rows.append(row)
        return rows


class PowerAwareScheduler:
    """Facade running timing -> max power -> min power."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Solve and return only the final result."""
        return self.solve_pipeline(problem).final

    def solve_pipeline(self, problem: SchedulingProblem) -> PipelineResult:
        """Solve and return all three stage results.

        The timing stage ignores power constraints entirely (its result
        may contain spikes, as Fig. 2 does); the max-power stage result
        is valid; the min-power stage result additionally maximizes
        utilization found across the heuristic configurations.

        A problem carrying DVFS operating-point ladders is delegated to
        :class:`~repro.scheduling.freq_select.FreqSelectScheduler`,
        which chooses a deadline-safe minimum-energy configuration and
        then runs this same three-stage pipeline on the materialized
        (speed-fixed) problem — so every caller of the pipeline gets
        the DVFS axis for free.
        """
        if problem.has_operating_points:
            from .freq_select import FreqSelectScheduler
            return FreqSelectScheduler(
                self.options).solve_pipeline(problem)
        with OBS.span("sched.pipeline", problem=problem.name):
            timing = _timed_stage(
                "timing",
                lambda: TimingScheduler(self.options).solve(problem))
            max_power = _timed_stage(
                "max_power",
                lambda: MaxPowerScheduler(self.options).solve(problem))
            min_power = _timed_stage(
                "min_power",
                lambda: MinPowerScheduler(self.options).improve(
                    problem, max_power))
        min_power.stats.merge(max_power.stats)
        # The final result should expose all three stage timings; the
        # standalone Fig.-2 timing run is not merged (its algorithmic
        # counters would double-count the timing work MaxPowerScheduler
        # repeats internally), so copy just its wall clock.
        min_power.stats.stage_seconds.setdefault(
            "timing", timing.stats.stage_seconds.get("timing", 0.0))
        return PipelineResult(timing=timing, max_power=max_power,
                              min_power=min_power)


def schedule(problem: SchedulingProblem,
             options: "SchedulerOptions | None" = None) -> ScheduleResult:
    """One-call public API: power-aware schedule for a problem."""
    return PowerAwareScheduler(options).solve(problem)
