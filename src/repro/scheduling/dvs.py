"""Variable-voltage (DVS) CPU scheduling — the related-work baseline.

Section 2 of the paper contrasts its approach with real-time DVS
schedulers (Okuma/Ishihara/Yasuura-style): "the idea is to save power
by slowing down the processor just enough to meet the deadlines", and
criticizes them on two counts — *"they are CPU schedulers that minimize
CPU power, whereas our power managers control subsystems and task
executions"*, and *"these schedulers do not handle constraints on
power"*.  To make that comparison measurable instead of rhetorical,
this module implements the classic baseline:

* one CPU; non-preemptive jobs in earliest-deadline-first order;
* a discrete frequency ladder; each job runs at the **slowest**
  frequency that keeps every remaining deadline feasible (checked at
  full speed), the standard greedy slack-reclamation rule;
* at frequency ``f``: duration stretches by ``1/f``, instantaneous
  power scales by ``f^3`` (P ~ f V^2 with V ~ f), so energy scales by
  ``f^2`` — the quadratic saving that motivates DVS.

Rounding rule: delays live on the integer time grid, so a job slowed
to ``f`` runs for ``ceil(d / f)`` time units (never less than 1), and
its *realized* energy ``ceil(d/f) * quantize(p * f^3)`` is slightly
above the ideal ``f^2 * d * p`` whenever the stretch does not divide
evenly.  Results report both numbers (``extra["energy_ideal_J"]`` /
``extra["energy_rounded_J"]``); scaled powers pass through the shared
deterministic :func:`repro.core.dvfs.quantize_power` grid so hashes of
scaled problems are stable across platforms and code paths.

Crucially — and faithfully to the critique — the DVS scheduler only
*controls the CPU*.  Tasks on any other resource (motors, heaters,
radios) are treated as a given: they execute at their ASAP times, and
the CPU plan is laid obliviously on top.  The benchmark
(`bench_dvs_comparison.py`) shows both sides of the paper's argument:
DVS genuinely wins on CPU energy, and genuinely violates a system-level
``P_max`` that the power-aware scheduler honours.
"""

from __future__ import annotations

import math

from ..core.dvfs import scaled_power
from ..core.graph import ConstraintGraph
from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME, Task
from ..errors import ReproError, SchedulingFailure
from .base import ScheduleResult, SchedulerStats, make_result

__all__ = ["DvsScheduler", "dvs_schedule", "CPU_RESOURCE"]

#: The resource name the DVS scheduler controls.
CPU_RESOURCE = "cpu"


class DvsScheduler:
    """EDF + greedy slowdown on one CPU; everything else is a given."""

    def __init__(self, frequencies: "tuple[float, ...]" =
                 (1.0, 0.75, 0.5, 0.25)):
        freqs = sorted(set(frequencies), reverse=True)
        if not freqs or freqs[0] != 1.0:
            raise ReproError(
                "the frequency ladder must include full speed (1.0)")
        if any(not 0 < f <= 1 for f in freqs):
            raise ReproError(
                f"frequencies must lie in (0, 1], got {frequencies}")
        self.frequencies = tuple(freqs)

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Produce the DVS schedule.

        CPU tasks (resource == ``"cpu"``) need a start deadline (a max
        separation from the anchor) or inherit a default horizon; they
        may not have constraints among themselves beyond deadlines —
        the classic independent-jobs model.  Non-CPU tasks are placed
        at their ASAP times, untouched.

        Returns a result whose graph carries the *scaled* CPU tasks
        (stretched duration, cubic-law power) so profiles and metrics
        are directly comparable with the other schedulers;
        ``extra["frequencies"]`` records the chosen ladder rungs.
        """
        graph = problem.graph
        cpu_jobs = [t for t in graph.tasks()
                    if t.resource == CPU_RESOURCE]
        if not cpu_jobs:
            raise SchedulingFailure(
                "DVS baseline needs at least one task on resource "
                f"{CPU_RESOURCE!r}")
        for job in cpu_jobs:
            for edge in graph.out_edges(job.name):
                if edge.dst != ANCHOR_NAME:
                    raise SchedulingFailure(
                        "DVS baseline handles independent deadline-"
                        f"driven CPU jobs; {job.name!r} has a "
                        f"constraint toward {edge.dst!r}")

        asap = longest_paths(graph).distance
        horizon = sum(t.duration for t in graph.tasks()) + max(
            (asap[name] for name in graph.task_names()), default=0)
        deadlines = {job.name: self._deadline(graph, job, horizon)
                     for job in cpu_jobs}
        order = sorted(cpu_jobs,
                       key=lambda j: (deadlines[j.name], j.name))

        chosen: "dict[str, float]" = {}
        starts: "dict[str, int]" = {}
        t = min(asap[j.name] for j in order)
        for index, job in enumerate(order):
            t = max(t, asap[job.name])
            freq = self._slowest_feasible(order, index, t, deadlines)
            if freq is None:
                raise SchedulingFailure(
                    f"DVS cannot meet the deadline of {job.name!r} "
                    "even at full speed")
            chosen[job.name] = freq
            starts[job.name] = t
            t += self._stretched(job.duration, freq)

        scaled_graph, schedule = self._materialize(
            problem, chosen, starts)
        result = make_result(
            SchedulingProblem(graph=scaled_graph, p_max=problem.p_max,
                              p_min=problem.p_min,
                              baseline=problem.baseline,
                              name=f"{problem.name}-dvs"),
            schedule, stats=SchedulerStats(), stage="dvs")
        result.extra["frequencies"] = dict(chosen)
        result.extra["graph"] = scaled_graph
        # Both energy accountings for the scaled CPU jobs (module
        # docstring, "Rounding rule"): the continuous-model ideal and
        # what the integer time grid actually charges.
        by_name = {job.name: job for job in cpu_jobs}
        ideal = sum(by_name[name].energy * freq ** 2
                    for name, freq in chosen.items())
        rounded = sum(
            self._stretched(by_name[name].duration, freq)
            * scaled_power(by_name[name].power, freq)
            for name, freq in chosen.items())
        result.extra["energy_ideal_J"] = round(ideal, 6)
        result.extra["energy_rounded_J"] = round(rounded, 6)
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _deadline(graph: ConstraintGraph, job: Task,
                  horizon: int) -> int:
        """The job's *finish* deadline: start deadline + duration, or
        the horizon when unconstrained."""
        bound = graph.separation(job.name, ANCHOR_NAME)
        if bound is None:
            return horizon
        return -bound + job.duration

    @staticmethod
    def _stretched(duration: int, freq: float) -> int:
        return max(1, math.ceil(duration / freq))

    def _slowest_feasible(self, order, index, t, deadlines) \
            -> "float | None":
        """Slowest rung for job ``index`` starting at ``t`` such that it
        and every later job (at full speed) still meet their
        deadlines."""
        job = order[index]
        for freq in reversed(self.frequencies):  # slowest first
            finish = t + self._stretched(job.duration, freq)
            if finish > deadlines[job.name]:
                continue
            clock = finish
            ok = True
            for later in order[index + 1:]:
                clock += later.duration  # full speed
                if clock > deadlines[later.name]:
                    ok = False
                    break
            if ok:
                return freq
        return None

    def _materialize(self, problem, chosen, starts) \
            -> "tuple[ConstraintGraph, Schedule]":
        """Build the scaled graph + the combined schedule (CPU jobs at
        their DVS slots, everything else ASAP)."""
        source = problem.graph
        asap = longest_paths(source).distance
        scaled = ConstraintGraph(source.name + "-dvs")
        all_starts: "dict[str, int]" = {}
        for task in source.tasks():
            if task.name in chosen:
                freq = chosen[task.name]
                scaled.add_task(Task(
                    name=task.name,
                    duration=self._stretched(task.duration, freq),
                    power=scaled_power(task.power, freq),
                    resource=task.resource,
                    meta={**dict(task.meta), "dvs_freq": freq}))
                all_starts[task.name] = starts[task.name]
            else:
                scaled.add_task(task)
                all_starts[task.name] = asap[task.name]
        return scaled, Schedule(scaled, all_starts)


def dvs_schedule(problem: SchedulingProblem,
                 frequencies: "tuple[float, ...]" = (1.0, 0.75, 0.5,
                                                     0.25)) \
        -> ScheduleResult:
    """Convenience wrapper for :class:`DvsScheduler`."""
    return DvsScheduler(frequencies=frequencies).solve(problem)
