"""Greedy power-capped list scheduler (extra baseline).

A classic resource-constrained list scheduler extended with a power cap:
tasks are visited in ASAP (earliest-start, critical-path-aware) order
and each is placed at the earliest slot where

* all its separation constraints from already-placed tasks hold,
* its resource is free for the whole execution, and
* adding its power keeps the profile at or below ``P_max`` throughout.

This is the natural "obvious" alternative to the paper's three-stage
pipeline and serves as a second comparison point in the benchmarks: it
is fast and usually close on makespan, but it neither backtracks (so it
can fail on max-separation-rich graphs where the paper's scheduler
succeeds) nor optimizes min-power utilization.

Max separations are honoured by *validation*: the greedy placement only
propagates min separations, then the result is checked; a violated max
separation is reported as a :class:`SchedulingFailure`.
"""

from __future__ import annotations

from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME
from ..core.validation import check_power_valid
from ..errors import SchedulingFailure
from .base import ScheduleResult, SchedulerOptions, SchedulerStats, \
    make_result

__all__ = ["GreedyListScheduler", "greedy_schedule"]


class GreedyListScheduler:
    """One-pass list scheduling with resource and power feasibility."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Greedy placement; raises on failure (no backtracking)."""
        self.stats = SchedulerStats()
        graph = problem.fresh_graph()
        reasons = problem.feasible_power_check()
        if reasons:
            raise SchedulingFailure(
                "problem is power-infeasible: " + "; ".join(reasons))

        self.stats.longest_path_runs += 1
        est = longest_paths(graph).distance
        order = sorted(graph.task_names(), key=lambda n: (est[n], n))

        starts: "dict[str, int]" = {}
        resource_busy: "dict[str, list[tuple[int, int]]]" = {}
        power_deltas: "dict[int, float]" = {}
        headroom = problem.p_max - problem.total_baseline

        for name in order:
            task = graph.task(name)
            t = self._earliest_by_separations(graph, name, starts, est)
            while True:
                t_res = self._resource_clear(
                    resource_busy.get(task.resource, []), t, task.duration)
                if t_res > t:
                    t = t_res
                    continue
                t_pow = self._power_clear(power_deltas, t, task.duration,
                                          task.power, headroom)
                if t_pow > t:
                    t = t_pow
                    continue
                break
            starts[name] = t
            if task.resource is not None and task.duration > 0:
                resource_busy.setdefault(task.resource, []).append(
                    (t, t + task.duration))
            if task.power > 0 and task.duration > 0:
                power_deltas[t] = power_deltas.get(t, 0.0) + task.power
                end = t + task.duration
                power_deltas[end] = power_deltas.get(end, 0.0) - task.power

        schedule = Schedule(graph, starts)
        report = check_power_valid(schedule, problem.p_max,
                                   baseline=problem.baseline)
        if not report.ok:
            raise SchedulingFailure(
                "greedy list scheduler produced an invalid schedule "
                "(it does not backtrack over max separations): "
                + report.violations[0].detail)
        result = make_result(problem, schedule, stats=self.stats,
                             stage="greedy")
        result.extra["graph"] = graph
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _earliest_by_separations(graph, name, starts, est) -> int:
        """Earliest start honouring min separations from placed tasks."""
        t = est[name]
        for edge in graph.in_edges(name):
            if edge.src == ANCHOR_NAME:
                t = max(t, edge.weight)
            elif edge.src in starts and edge.weight >= 0:
                t = max(t, starts[edge.src] + edge.weight)
        return t

    @staticmethod
    def _resource_clear(busy: "list[tuple[int, int]]", t: int,
                        duration: int) -> int:
        """First time >= t when the resource is free for ``duration``."""
        if duration == 0:
            return t
        changed = True
        while changed:
            changed = False
            for b0, b1 in busy:
                if t < b1 and t + duration > b0:
                    t = b1
                    changed = True
        return t

    @staticmethod
    def _power_clear(deltas: "dict[int, float]", t: int, duration: int,
                     power: float, headroom: float) -> int:
        """First time >= t where ``power`` fits under the cap throughout
        ``[t, t+duration)``; scans the event-sorted usage curve."""
        if duration == 0 or power == 0:
            return t
        events = sorted(deltas.items())
        while True:
            level = 0.0
            violation_at = None
            for time, delta in events:
                if time >= t + duration:
                    break
                level += delta
                if time <= t:
                    continue
                if level + power > headroom + 1e-9:
                    violation_at = time
            # check the level holding at time t itself
            level_at_t = sum(d for time, d in events if time <= t)
            if level_at_t + power > headroom + 1e-9:
                # advance past the event that releases enough power
                nxt = [time for time, _ in events if time > t]
                if not nxt:
                    raise SchedulingFailure(
                        f"task of {power:g} W can never fit under "
                        f"headroom {headroom:g} W")
                t = nxt[0]
                continue
            if violation_at is None:
                return t
            t = violation_at
        # unreachable

def greedy_schedule(problem: SchedulingProblem,
                    options: "SchedulerOptions | None" = None) \
        -> ScheduleResult:
    """Convenience wrapper for :class:`GreedyListScheduler`."""
    return GreedyListScheduler(options).solve(problem)
