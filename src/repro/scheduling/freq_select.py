"""Deadline-safe minimum-energy operating-point selection.

This is the scheduler-side answer to the paper's Section 2 critique of
DVS schedulers.  The sidecar :mod:`repro.scheduling.dvs` baseline shows
what a CPU-only slowdown scheduler does; this module makes the *power-
aware* pipeline able to slow tasks too — so ``P_max`` spike elimination
can trade a cubic power drop for a ``1/f`` delay stretch when simply
delaying a task (the only move the paper's schedulers have) would break
a timing constraint.

The search operates on problems whose tasks carry
:class:`~repro.core.task.OperatingPoint` ladders:

1. **Pre-pass** — any task whose full-speed power (plus the constant
   baseline) already exceeds ``P_max`` is moved to the *fastest*
   operating point that fits under the budget.  This is the rescue move
   delay-only scheduling provably cannot make: when
   ``SchedulingProblem.feasible_power_check`` reports a task above
   ``P_max``, no amount of delaying helps, but a slower rung divides
   the power by ``1/f**3``.
2. **Greedy descent** — starting from that assignment, single-task
   moves are evaluated by materializing the candidate configuration
   (:func:`~repro.core.dvfs.materialize_assignment`, which adjusts
   duration-anchored precedence and deadline edges) and running
   :class:`~repro.scheduling.max_power.MaxPowerScheduler` on the
   ordinary scaled problem.  The best move under the lexicographic
   objective *(feasible, total energy, finish time)* is applied and the
   descent repeats until no move improves or the evaluation budget is
   spent.  Iteration order is deterministic (tasks by name, points in
   ladder order), so the chosen configuration is a pure function of the
   problem and options.
3. The winning configuration then gets the full three-stage pipeline
   (timing -> max power -> min power), exactly as a hand-written
   problem would, and the :class:`~repro.scheduling.power_aware.
   PipelineResult` carries the search result in its ``freq_select``
   field with the chosen configuration in ``final.extra["dvfs"]``.

The evaluation budget is a *constructor* argument, deliberately not a
:class:`~repro.scheduling.base.SchedulerOptions` field: options are
fingerprinted into every schedule-store and sweep-cache key, and adding
a field there would silently invalidate every existing key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..core.dvfs import materialize_assignment, scaled_duration, scaled_power
from ..core.problem import SchedulingProblem
from ..core.task import OperatingPoint, Task
from ..errors import PositiveCycleError, SchedulingFailure
from ..obs import OBS
from .base import ScheduleResult, SchedulerOptions
from .max_power import MaxPowerScheduler
from .power_aware import PipelineResult, PowerAwareScheduler, _timed_stage

__all__ = ["FreqSelectScheduler", "freq_select_schedule",
           "assignment_summary"]

#: Default cap on MaxPower evaluations during one descent.
DEFAULT_EVAL_BUDGET = 160

_INFEASIBLE = (1, math.inf, math.inf)


def _full_speed_point(task: Task) -> OperatingPoint:
    for point in task.operating_points:
        if point.is_full_speed:
            return point
    raise SchedulingFailure(  # unreachable: Task validates this
        f"task {task.name!r} ladder lacks the full-speed point")


def assignment_summary(assignment: "Mapping[str, OperatingPoint]") \
        -> "dict[str, dict]":
    """JSON-safe view of a configuration choice."""
    return {name: {"freq": point.freq, "cores": point.cores}
            for name, point in sorted(assignment.items())}


@dataclass
class _SearchState:
    """Bookkeeping for one descent (evaluation cache + counters)."""

    evaluations: int = 0
    rounds: int = 0
    cache_hits: int = 0
    cache: "dict[tuple, tuple]" = field(default_factory=dict)


class FreqSelectScheduler:
    """Operating-point search composed with the power-aware pipeline.

    ``solve``/``solve_pipeline`` accept any problem: one without
    operating points falls straight through to
    :class:`~repro.scheduling.power_aware.PowerAwareScheduler`
    unchanged, so this class is a safe universal entry point.
    """

    def __init__(self, options: "SchedulerOptions | None" = None,
                 eval_budget: int = DEFAULT_EVAL_BUDGET):
        self.options = options or SchedulerOptions()
        if eval_budget < 1:
            raise ValueError(
                f"eval_budget must be >= 1, got {eval_budget}")
        self.eval_budget = eval_budget

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Solve and return only the final (min-power stage) result."""
        return self.solve_pipeline(problem).final

    def solve_pipeline(self, problem: SchedulingProblem) -> PipelineResult:
        """Choose a configuration, then run the three-stage pipeline.

        The returned :class:`PipelineResult` is exactly what the plain
        pipeline returns for the materialized problem, plus the
        ``freq_select`` stage result; ``final.extra["dvfs"]`` records
        the chosen per-task operating points, both energy accountings
        (ideal continuous vs integer-rounded — they differ whenever a
        stretch does not divide evenly, see :mod:`repro.core.dvfs`),
        and the search effort.
        """
        if not problem.has_operating_points:
            return PowerAwareScheduler(self.options).solve_pipeline(problem)
        with OBS.span("sched.freq_select", problem=problem.name):
            search = _timed_stage(
                "freq_select", lambda: self._search(problem))
        assignment: "dict[str, OperatingPoint]" = \
            search.extra["dvfs_points"]
        chosen = materialize_assignment(problem, assignment)
        pipeline = PowerAwareScheduler(self.options).solve_pipeline(chosen)
        pipeline.freq_select = search
        pipeline.final.extra["dvfs"] = search.extra["dvfs"]
        pipeline.final.stats.stage_seconds.setdefault(
            "freq_select",
            search.stats.stage_seconds.get("freq_select", 0.0))
        return pipeline

    # ------------------------------------------------------------------

    def _search(self, problem: SchedulingProblem) -> ScheduleResult:
        """Pre-pass + greedy descent; returns the winning max-power
        evaluation with the chosen assignment in ``extra``."""
        ladder_tasks = sorted(
            (t for t in problem.graph.tasks() if t.has_ladder),
            key=lambda t: t.name)
        state = _SearchState()
        current = {t.name: self._rescue_point(problem, t)
                   for t in ladder_tasks}

        best_score, best_result = self._evaluate(problem, current, state)
        improved = True
        while improved and state.evaluations < self.eval_budget:
            improved = False
            state.rounds += 1
            best_move = None
            for task in ladder_tasks:
                for point in task.operating_points:
                    if point == current[task.name]:
                        continue
                    if self._violates_budget(problem, task, point):
                        continue
                    candidate = dict(current)
                    candidate[task.name] = point
                    score, result = self._evaluate(
                        problem, candidate, state)
                    if score < best_score:
                        best_score, best_move = score, (candidate, result)
                    if state.evaluations >= self.eval_budget:
                        break
                if state.evaluations >= self.eval_budget:
                    break
            if best_move is not None:
                current, best_result = best_move
                improved = True

        if best_result is None:
            raise SchedulingFailure(
                f"no feasible operating-point configuration found for "
                f"{problem.name!r} within {state.evaluations} "
                f"evaluations")
        ideal, rounded = self._energies(ladder_tasks, current)
        best_result.extra["dvfs"] = {
            "assignment": assignment_summary(current),
            "ladder_tasks": len(ladder_tasks),
            "evaluations": state.evaluations,
            "rounds": state.rounds,
            "cache_hits": state.cache_hits,
            "energy_ideal_J": round(ideal, 6),
            "energy_rounded_J": round(rounded, 6),
        }
        best_result.extra["dvfs_points"] = dict(current)
        best_result.stage = "freq_select"
        return best_result

    def _rescue_point(self, problem: SchedulingProblem,
                      task: Task) -> OperatingPoint:
        """Full speed when it fits under ``P_max``; otherwise the
        fastest point that does (the pre-pass rescue)."""
        full = _full_speed_point(task)
        if not self._violates_budget(problem, task, full):
            return full
        fitting = [p for p in task.operating_points
                   if not self._violates_budget(problem, task, p)]
        if not fitting:
            raise SchedulingFailure(
                f"task {task.name!r} exceeds P_max = {problem.p_max:g} W "
                f"at every operating point on its ladder")
        fitting.sort(key=lambda p: (
            scaled_duration(task.duration, p.freq, p.cores),
            scaled_power(task.power, p.freq, p.cores),
            -p.freq, p.cores))
        return fitting[0]

    @staticmethod
    def _violates_budget(problem: SchedulingProblem, task: Task,
                         point: OperatingPoint) -> bool:
        """Static screen: the point's power (plus baseline) alone
        breaks ``P_max`` — no schedule could fix that."""
        if task.duration == 0:
            return False
        power = scaled_power(task.power, point.freq, point.cores)
        return power + problem.total_baseline > problem.p_max

    def _evaluate(self, problem: SchedulingProblem,
                  assignment: "dict[str, OperatingPoint]",
                  state: _SearchState) \
            -> "tuple[tuple, ScheduleResult | None]":
        """Score one configuration by a max-power solve of its
        materialization; memoized per assignment."""
        key = tuple(sorted((name, point.key)
                           for name, point in assignment.items()))
        if key in state.cache:
            state.cache_hits += 1
            return state.cache[key]
        state.evaluations += 1
        materialized = materialize_assignment(problem, assignment)
        try:
            result = MaxPowerScheduler(self.options).solve(materialized)
            score = (0, result.metrics.total_energy,
                     result.metrics.finish_time)
        except (SchedulingFailure, PositiveCycleError):
            # A slowdown can make the (tightened) deadline chain
            # unsatisfiable — that candidate is simply infeasible.
            result, score = None, _INFEASIBLE
        state.cache[key] = (score, result)
        return score, result

    @staticmethod
    def _energies(ladder_tasks: "list[Task]",
                  assignment: "dict[str, OperatingPoint]") \
            -> "tuple[float, float]":
        """(ideal continuous, integer-rounded) energy of the scaled
        tasks — ideal is ``d * p * f**2`` per task, rounded is what the
        integer grid actually charges."""
        ideal = rounded = 0.0
        for task in ladder_tasks:
            point = assignment[task.name]
            ideal += task.duration * task.power * point.freq ** 2
            rounded += (
                scaled_duration(task.duration, point.freq, point.cores)
                * scaled_power(task.power, point.freq, point.cores))
        return ideal, rounded


def freq_select_schedule(problem: SchedulingProblem,
                         options: "SchedulerOptions | None" = None,
                         eval_budget: int = DEFAULT_EVAL_BUDGET) \
        -> ScheduleResult:
    """Convenience wrapper for :class:`FreqSelectScheduler`."""
    return FreqSelectScheduler(
        options, eval_budget=eval_budget).solve(problem)
