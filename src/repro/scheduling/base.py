"""Shared scheduler plumbing: options, statistics, results.

Every scheduler in this package takes a
:class:`~repro.core.problem.SchedulingProblem` and returns a
:class:`ScheduleResult`.  Schedulers never mutate the problem's graph —
they work on a private copy (``problem.fresh_graph()``), so the same
problem can be solved repeatedly under different options or power
constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.metrics import ScheduleMetrics, evaluate
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule

__all__ = ["SchedulerOptions", "SchedulerStats", "ScheduleResult",
           "make_result"]


@dataclass
class SchedulerOptions:
    """Tunable knobs shared by the scheduling algorithms.

    The defaults reproduce the paper's heuristics; the ablation
    benchmarks flip individual knobs to measure their contribution.

    Attributes
    ----------
    max_backtracks:
        Budget for backtracking steps in the timing scheduler before it
        gives up (the paper's algorithm is exhaustive; the cap only
        matters for adversarial synthetic instances).
    max_spike_attempts:
        Budget for spike-elimination branches in the max-power
        scheduler (per restart).
    max_power_restarts:
        Number of multi-start repair attempts in the max-power
        scheduler.  Restart 0 is the pure paper heuristic; later
        restarts perturb tie-breaking among equal-slack tasks, and the
        best schedule by (finish time, energy cost) wins.  Set to 1 for
        the paper's single-run behaviour.
    slack_ordering:
        If True (paper default) order simultaneous tasks by slack and
        delay the largest-slack task first; if False pick in a
        seed-determined random order (ablation: "random selection").
    delay_bound_by_duration:
        If True (paper default) cap each delay distance at the task's
        execution time.
    compaction:
        If True (default) the max-power scheduler runs a left-shift
        compaction pass after spike elimination: scheduler-added delay
        edges are relaxed as far as power-validity allows, removing
        idle time the greedy repair left at the front of the schedule.
        An extension knob (not in the paper's pseudo-code) that the
        ablation bench measures; turning it off reproduces the raw
        Fig. 4 behaviour.
    serial_fallback:
        If True (default) the max-power scheduler also evaluates the
        fully-serialized schedule and keeps it when it beats the repair
        result on (finish time, energy cost).  The paper notes its
        worst-case power-aware schedule coincides with the serial one;
        this knob makes that comparison explicit and measurable.
    min_power_scans:
        Number of gap-filling scan configurations the min-power
        scheduler tries (scan order x slot heuristic); the best result
        wins.
    scan_orders:
        Which time-scan orders the min-power scheduler may use.
    slot_heuristics:
        How a task is positioned inside a power gap: start at the gap
        (``"start_at_gap"``), right-align to the gap end
        (``"finish_at_gap_end"``), or pick randomly (``"random"``).
    seed:
        Seed for every randomized choice; results are deterministic for
        a fixed seed.
    """

    max_backtracks: int = 10_000
    max_spike_attempts: int = 2_000
    max_power_restarts: int = 2
    slack_ordering: bool = True
    delay_bound_by_duration: bool = True
    compaction: bool = True
    serial_fallback: bool = True
    min_power_scans: int = 6
    scan_orders: "tuple[str, ...]" = ("forward", "reverse", "random")
    slot_heuristics: "tuple[str, ...]" = ("start_at_gap",
                                          "finish_at_gap_end", "random")
    seed: int = 2001

    def __post_init__(self) -> None:
        valid_orders = {"forward", "reverse", "random"}
        bad = set(self.scan_orders) - valid_orders
        if bad:
            raise ValueError(f"unknown scan orders: {sorted(bad)}")
        valid_slots = {"start_at_gap", "finish_at_gap_end", "random"}
        bad = set(self.slot_heuristics) - valid_slots
        if bad:
            raise ValueError(f"unknown slot heuristics: {sorted(bad)}")


@dataclass
class SchedulerStats:
    """Counters describing the work one scheduler run performed.

    Besides the algorithmic counters, a run carries its observability
    payload: per-stage wall-clock timings (``stage_seconds``, keyed by
    pipeline stage name) and the longest-path solver's cache behaviour
    (exact cache hits, incremental delta propagations, and full
    Bellman–Ford recomputations).  The batch engine
    (:mod:`repro.engine`) aggregates these into its JSON run traces,
    and :meth:`absorb_into` folds them into a :mod:`repro.obs` metrics
    registry under the stable ``sched.*`` naming scheme
    (:data:`repro.obs.STATS_METRIC_NAMES`).
    """

    timing_backtracks: int = 0
    serializations: int = 0
    longest_path_runs: int = 0
    spikes_removed: int = 0
    delays_applied: int = 0
    spike_attempts: int = 0
    gap_fill_moves: int = 0
    gap_fill_rejected: int = 0
    scans: int = 0
    lp_cache_hits: int = 0
    lp_incremental_runs: int = 0
    lp_full_runs: int = 0
    lp_cache_log_evictions: int = 0
    lp_kernel_runs: int = 0
    lp_state_restores: int = 0
    lp_warm_hits: int = 0
    lp_probe_prunes: int = 0
    stage_seconds: "dict[str, float]" = field(default_factory=dict)

    def merge(self, other: "SchedulerStats") -> None:
        """Accumulate counters from a nested scheduler run."""
        for name in self.__dataclass_fields__:
            if name == "stage_seconds":
                for stage, seconds in other.stage_seconds.items():
                    self.stage_seconds[stage] = \
                        self.stage_seconds.get(stage, 0.0) + seconds
                continue
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> "dict[str, Any]":
        """A plain-JSON view (counters + stage timings) for traces."""
        counters = {name: getattr(self, name)
                    for name in self.__dataclass_fields__
                    if name != "stage_seconds"}
        return {"counters": counters,
                "stage_seconds": dict(self.stage_seconds)}

    def absorb_into(self, registry) -> None:
        """Fold this run's counters and stage timings into a
        :class:`repro.obs.MetricsRegistry` under the ``sched.*``
        metric names."""
        from ..obs import absorb_scheduler_stats
        absorb_scheduler_stats(registry, self.as_dict())


@dataclass
class ScheduleResult:
    """A solved scheduling problem.

    Bundles the schedule with its profile, the Section 4.2 metrics under
    the problem's (P_max, P_min), the scheduler's work counters, and the
    decorated graph (containing the serialization/delay/lock edges the
    schedulers added — useful for Gantt annotation and for the runtime
    validity-range analysis).
    """

    problem: SchedulingProblem
    schedule: Schedule
    profile: PowerProfile
    metrics: ScheduleMetrics
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    stage: str = "power_aware"
    extra: "Mapping[str, Any]" = field(default_factory=dict)

    @property
    def finish_time(self) -> int:
        """``tau_sigma`` of the solution."""
        return self.schedule.makespan

    @property
    def energy_cost(self) -> float:
        """``Ec_sigma(P_min)`` of the solution in joules."""
        return self.metrics.energy_cost

    @property
    def utilization(self) -> float:
        """``rho_sigma(P_min)`` of the solution in [0, 1]."""
        return self.metrics.utilization

    def summary(self) -> str:
        """One-line human-readable result summary."""
        return (f"{self.problem.name}: tau={self.finish_time}s, "
                f"Ec={self.energy_cost:.1f}J, "
                f"rho={100 * self.utilization:.1f}%, "
                f"peak={self.metrics.peak_power:.1f}W "
                f"[stage={self.stage}]")


def make_result(problem: SchedulingProblem, schedule: Schedule,
                stats: "SchedulerStats | None" = None,
                stage: str = "power_aware",
                extra: "Mapping[str, Any] | None" = None) -> ScheduleResult:
    """Assemble a :class:`ScheduleResult` (profile + metrics computed)."""
    profile = PowerProfile.from_schedule(schedule,
                                         baseline=problem.baseline)
    metrics = evaluate(schedule, problem.p_max, problem.p_min,
                       baseline=problem.baseline)
    return ScheduleResult(problem=problem, schedule=schedule,
                          profile=profile, metrics=metrics,
                          stats=stats or SchedulerStats(), stage=stage,
                          extra=dict(extra or {}))
