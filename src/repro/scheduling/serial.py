"""Fully-serialized baseline scheduler (the "JPL schedule").

The paper's comparison baseline is the hand-crafted low-power schedule
used on the actual Pathfinder mission: *all* tasks are serialized —
across resources, not just within one — so at most one task executes at
any time and the power draw never stacks.  "The existing schedule is
identical to our power-aware schedule in the worst case with the lowest
power budget" (Section 6).

This scheduler packs the tasks back-to-back in a topological order that
respects every min/max separation.  It reuses the timing scheduler's
completeness by adding a single chain of serialization edges over *all*
tasks: the chain order is chosen greedily (earliest feasible first) with
backtracking, so a packed serial schedule is found whenever one exists.
"""

from __future__ import annotations

from ..core.graph import ConstraintGraph
from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..core.task import ANCHOR_NAME
from ..errors import SchedulingFailure
from .base import ScheduleResult, SchedulerOptions, SchedulerStats, \
    make_result
from .timing import asap_schedule

__all__ = ["SerialScheduler", "serial_schedule"]


class SerialScheduler:
    """Serialize every task into a single back-to-back chain."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Find a fully-serial, time-valid schedule.

        Raises :class:`SchedulingFailure` if no serial order satisfies
        the min/max separations (a max separation can make full
        serialization impossible even when a parallel schedule exists).
        """
        self.stats = SchedulerStats()
        self._budget = self.options.max_backtracks
        graph = problem.fresh_graph()
        chain: "list[str]" = []
        if not self._extend(graph, chain):
            raise SchedulingFailure(
                f"no fully-serial schedule exists for {problem.name!r}")
        schedule = asap_schedule(graph)
        result = make_result(problem, schedule, stats=self.stats,
                             stage="serial")
        result.extra["graph"] = graph
        result.extra["chain"] = list(chain)
        return result

    # ------------------------------------------------------------------

    def _extend(self, graph: ConstraintGraph, chain: "list[str]") -> bool:
        """Depth-first search over serial orders.

        Each placed task gets a serialization edge from its predecessor
        in the chain; candidates are tried in ASAP order so the first
        solution found is the packed greedy one.
        """
        names = graph.task_names()
        if len(chain) == len(names):
            return True
        placed = set(chain)
        self.stats.longest_path_runs += 1
        result = longest_paths(graph, probe=True)
        if result is None:
            return False
        dist = result.distance
        ready = [n for n in names if n not in placed
                 and self._preds_placed(graph, n, placed)]
        ready.sort(key=lambda n: (dist[n], n))
        prev = chain[-1] if chain else None
        for candidate in ready:
            if self._budget <= 0:
                return False
            self._budget -= 1
            token = graph.checkpoint()
            ok = True
            if prev is not None:
                ok = self._chain_after(graph, prev, candidate)
            if ok:
                chain.append(candidate)
                if self._extend(graph, chain):
                    return True
                chain.pop()
            self.stats.timing_backtracks += 1
            graph.rollback(token)
        return False

    @staticmethod
    def _preds_placed(graph: ConstraintGraph, name: str,
                      placed: "set[str]") -> bool:
        for edge in graph.in_edges(name):
            if edge.weight >= 0 and edge.src != ANCHOR_NAME \
                    and edge.src not in placed:
                return False
        return True

    def _chain_after(self, graph: ConstraintGraph, prev: str,
                     name: str) -> bool:
        """Append ``name`` after ``prev`` in the serial chain."""
        graph.add_edge(prev, name, graph.task(prev).duration,
                       tag="serialize")
        self.stats.serializations += 1
        self.stats.longest_path_runs += 1
        return longest_paths(graph, probe=True) is not None


def serial_schedule(problem: SchedulingProblem,
                    options: "SchedulerOptions | None" = None) \
        -> ScheduleResult:
    """Convenience wrapper: the fully-serial baseline schedule."""
    return SerialScheduler(options).solve(problem)
