"""Timing scheduler — the paper's Fig. 3 algorithm.

Finds a *time-valid* schedule for a constraint graph with min/max
separations and shared resources, or proves none exists.

The algorithm topologically traverses the graph from the virtual anchor.
When a candidate vertex ``c`` is visited it is fixed at its
longest-path distance from the anchor (its earliest feasible start), and
every not-yet-traversed task sharing ``c``'s resource is *serialized
after* ``c`` by adding an edge ``c -> u`` of weight ``d(c)``.  If the
added edges create a positive cycle — the serialization order
contradicts a max separation — the algorithm backtracks and tries a
different topological order.  Because all topological orders are
enumerated (up to an optional backtrack budget), the scheduler is
complete: it finds a time-valid schedule whenever one exists.

Two implementation notes relative to the pseudo-code:

* Serialization edges always run from a visited vertex to an unvisited
  one, so the longest-path distance of an already-visited vertex never
  changes; computing all start times once at the end is equivalent to
  recording ``L(c)`` per step.
* The traversal frontier is the standard "ready set" of unvisited
  vertices whose forward-edge predecessors are all visited.  Forward
  (non-negative) edges define precedence; backward (negative) max
  separations only constrain distances, not visit order.
"""

from __future__ import annotations

from ..core.graph import ConstraintGraph
from ..core.longest_path import longest_paths
from ..core.problem import SchedulingProblem
from ..core.schedule import Schedule
from ..core.task import ANCHOR_NAME
from ..errors import SchedulingFailure
from ..obs import OBS
from .base import ScheduleResult, SchedulerOptions, SchedulerStats, \
    make_result

__all__ = ["TimingScheduler", "timing_schedule", "asap_schedule"]


def asap_schedule(graph: ConstraintGraph, *,
                  probe: bool = False) -> "Schedule | None":
    """The ASAP schedule implied by the graph's current edge set.

    Ignores resource conflicts — valid only after serialization edges
    are in place.  Raises :class:`PositiveCycleError` if the constraints
    contradict — unless ``probe`` is True, in which case an infeasible
    edge set yields None instead (for scheduler search loops that only
    need the boolean; see :func:`repro.core.longest_path.longest_paths`).
    """
    result = longest_paths(graph, probe=probe)
    if result is None:
        return None
    return Schedule(graph, {name: result.distance[name]
                            for name in graph.task_names()})


class TimingScheduler:
    """Backtracking topological serialization (paper Fig. 3)."""

    def __init__(self, options: "SchedulerOptions | None" = None):
        self.options = options or SchedulerOptions()
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        """Find a time-valid schedule for the problem.

        Returns a :class:`ScheduleResult` with ``stage="timing"``.  The
        result's graph copy carries the serialization edges that make
        the schedule reproducible by a plain longest-path pass.

        Raises
        ------
        SchedulingFailure
            If no time-valid schedule exists (all topological orders
            tried), or the backtrack budget is exhausted.
        """
        graph = problem.fresh_graph()
        schedule = self.schedule_graph(graph)
        result = make_result(problem, schedule, stats=self.stats,
                             stage="timing")
        result.extra["graph"] = graph
        return result

    def schedule_graph(self, graph: ConstraintGraph) -> Schedule:
        """Serialize *in place* and return the time-valid schedule.

        The graph is decorated with ``tag="serialize"`` edges.  Callers
        that need the original graph should pass a copy.
        """
        self.stats = SchedulerStats()
        self._budget = self.options.max_backtracks
        visited: "list[str]" = []
        with OBS.span("sched.timing.search") as search_span:
            placed = self._visit_all(graph, visited)
            search_span.set(backtracks=self.stats.timing_backtracks,
                            serializations=self.stats.serializations,
                            placed=placed)
        if not placed:
            raise SchedulingFailure(
                "no time-valid schedule exists for "
                f"{graph.name!r} (exhausted every topological order)"
                if self._budget > 0 else
                f"timing scheduler gave up on {graph.name!r} after "
                f"{self.options.max_backtracks} backtracks")
        self.stats.longest_path_runs += 1
        return asap_schedule(graph)

    # ------------------------------------------------------------------

    def _visit_all(self, graph: ConstraintGraph,
                   visited: "list[str]") -> bool:
        """Depth-first enumeration of topological orders with
        serialization; True when every vertex has been placed."""
        names = graph.task_names()
        if len(visited) == len(names):
            return True
        ready = self._ready_set(graph, set(visited))
        if not ready:
            # Remaining vertices form a forward-edge cycle: with integer
            # non-negative weights, any forward cycle that is not all
            # zero-weight is a positive cycle; an all-zero cycle still
            # admits simultaneous starts, which longest path handles,
            # so break ties by visiting the lexicographically first
            # remaining vertex.
            remaining = [n for n in names if n not in set(visited)]
            ready = [min(remaining)]
        for candidate in ready:
            if self._budget <= 0:
                return False
            self._budget -= 1
            token = graph.checkpoint()
            if self._place(graph, candidate, set(visited)):
                visited.append(candidate)
                if self._visit_all(graph, visited):
                    return True
                visited.pop()
            self.stats.timing_backtracks += 1
            graph.rollback(token)
        return False

    def _ready_set(self, graph: ConstraintGraph,
                   visited: "set[str]") -> "list[str]":
        """Unvisited vertices whose forward predecessors are visited.

        Sorted by (earliest start, name) so the first-explored order is
        the natural ASAP order — in the common spike-free case the
        scheduler then succeeds with zero backtracks.
        """
        self.stats.longest_path_runs += 1
        dist = longest_paths(graph).distance
        ready = []
        for name in graph.task_names():
            if name in visited:
                continue
            preds_ok = True
            for edge in graph.in_edges(name):
                if edge.weight >= 0 and edge.src != ANCHOR_NAME \
                        and edge.src not in visited:
                    preds_ok = False
                    break
            if preds_ok:
                ready.append(name)
        ready.sort(key=lambda n: (dist[n], n))
        return ready

    def _place(self, graph: ConstraintGraph, candidate: str,
               visited: "set[str]") -> bool:
        """Serialize unvisited same-resource tasks after ``candidate``;
        False if that immediately creates a positive cycle."""
        resource = graph.task(candidate).resource
        if resource is not None:
            duration = graph.task(candidate).duration
            for other in graph.tasks_on(resource):
                if other.name == candidate or other.name in visited:
                    continue
                graph.add_edge(candidate, other.name, duration,
                               tag="serialize")
                self.stats.serializations += 1
        self.stats.longest_path_runs += 1
        return longest_paths(graph, probe=True) is not None


def timing_schedule(problem: SchedulingProblem,
                    options: "SchedulerOptions | None" = None) \
        -> ScheduleResult:
    """Convenience wrapper: run the timing scheduler on a problem."""
    return TimingScheduler(options).solve(problem)
