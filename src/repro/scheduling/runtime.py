"""Runtime schedule selection from a static schedule table.

Section 5.3 observes that the improved schedule of Fig. 7 "can be
directly applied to all cases with a range of constraints where
``P_max >= 16``, ``P_min <= 14``, without recomputing a schedule for
each case.  This feature makes our statically computed power-aware
schedules adaptable to a runtime scheduler that schedules tasks
according to the dynamically changing constraints imposed by the
environment."

This module implements that runtime layer:

* every stored schedule gets a **validity range**: it is power-valid
  for any ``P_max >=`` its profile peak, and keeps *full* utilization
  for any ``P_min <=`` its profile floor;
* :meth:`ScheduleTable.select` picks, for the current environment
  ``(P_max, P_min)``, the stored schedule that is valid and scores best
  — **earliest finish first**, then lowest energy cost, then highest
  utilization as the tie-breaker (performance leads because the point
  of power-awareness is converting available power into speed; see
  :meth:`ScheduleEntry.score`, whose ranking this mirrors and which
  ``tests/test_runtime_scheduler.py`` pins);
* :class:`RuntimeScheduler` wraps the table with a compute-on-miss
  policy, which is how the mission simulator tracks the decaying solar
  supply without rescheduling every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import energy_cost, min_power_utilization
from ..core.problem import SchedulingProblem
from ..core.profile import PowerProfile
from ..core.schedule import Schedule
from ..errors import SchedulingFailure
from .base import ScheduleResult, SchedulerOptions
from .power_aware import PowerAwareScheduler

__all__ = ["in_validity_range", "ScheduleEntry", "ScheduleTable",
           "RuntimeScheduler"]


def in_validity_range(peak: float, floor: float, p_max: float,
                      p_min: float,
                      tol: float = PowerProfile.POWER_TOL) -> bool:
    """Is ``(p_max, p_min)`` inside ``[peak, inf) x (-inf, floor]``?

    The Section 5.3 validity rectangle of a stored schedule whose
    profile peaks at ``peak`` and bottoms out at ``floor``: the schedule
    is power-valid for any budget at or above its peak, and keeps full
    utilization (so its energy cost is determined by its finish time
    alone) for any free-power level at or below its floor.  Shared by
    :class:`ScheduleEntry` and the engine's
    :class:`~repro.engine.schedule_store.ScheduleStore` so the runtime
    table and the cross-process cache agree on the same math.
    """
    return peak <= p_max + tol and p_min <= floor + tol


@dataclass(frozen=True)
class ScheduleEntry:
    """A statically-computed schedule with its validity range."""

    label: str
    schedule: Schedule
    profile: PowerProfile

    @property
    def min_p_max(self) -> float:
        """Smallest supply budget this schedule is power-valid under."""
        return self.profile.peak()

    @property
    def max_full_p_min(self) -> float:
        """Largest free-power level at which utilization is still 1."""
        return self.profile.floor()

    def is_valid_under(self, p_max: float) -> bool:
        """Power-valid for this budget?"""
        return self.min_p_max <= p_max + PowerProfile.POWER_TOL

    def covers(self, p_max: float, p_min: float) -> bool:
        """Is the environment inside this entry's validity rectangle?

        True when the schedule is power-valid under ``p_max`` *and*
        keeps full utilization at ``p_min`` — the Fig. 7 claim
        (``P_max >= 16``, ``P_min <= 14``) as a predicate.
        """
        return in_validity_range(self.min_p_max, self.max_full_p_min,
                                 p_max, p_min)

    def score(self, p_max: float, p_min: float) \
            -> "tuple[float, float, float]":
        """Ranking key under an environment (smaller is better).

        Performance first — the whole point of power-awareness is to
        convert available power into speed ("speeds up the rover's
        movement ... while drawing more costly energy") — then energy
        cost, then utilization as the tie-breaker.
        """
        return (float(self.profile.horizon),
                energy_cost(self.profile, p_min),
                -min_power_utilization(self.profile, p_min))

    def describe(self) -> str:
        """Human-readable validity range, Fig.-7 style."""
        return (f"{self.label}: valid for P_max >= "
                f"{self.min_p_max:g} W, full utilization for "
                f"P_min <= {self.max_full_p_min:g} W")


@dataclass
class ScheduleTable:
    """An ordered collection of precomputed schedules."""

    entries: "list[ScheduleEntry]" = field(default_factory=list)

    def add(self, label: str, schedule: Schedule,
            baseline: float = 0.0) -> ScheduleEntry:
        """Store a schedule; its profile/validity range is derived."""
        profile = PowerProfile.from_schedule(schedule, baseline=baseline)
        entry = ScheduleEntry(label=label, schedule=schedule,
                              profile=profile)
        self.entries.append(entry)
        return entry

    def add_result(self, label: str, result: ScheduleResult) \
            -> ScheduleEntry:
        """Store a scheduler result under a label."""
        entry = ScheduleEntry(label=label, schedule=result.schedule,
                              profile=result.profile)
        self.entries.append(entry)
        return entry

    def select(self, p_max: float, p_min: float,
               reprofile=None) -> "ScheduleEntry | None":
        """Best stored schedule valid under ``p_max`` (None on miss).

        ``reprofile(entry, p_max, p_min) -> PowerProfile`` re-evaluates
        an entry's power profile for the *target* environment.  Needed
        when task powers depend on the environment (the rover's draws
        rise as temperature falls with the sun): a schedule's stored
        profile only certifies validity for the conditions it was
        computed under.  Without ``reprofile`` the stored profile is
        trusted as-is (correct for environment-independent powers).
        """
        best = None
        best_key = None
        for entry in self.entries:
            profile = entry.profile if reprofile is None \
                else reprofile(entry, p_max, p_min)
            if profile.peak() > p_max + PowerProfile.POWER_TOL:
                continue
            key = (float(profile.horizon),
                   energy_cost(profile, p_min),
                   -min_power_utilization(profile, p_min))
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best

    def __len__(self) -> int:
        return len(self.entries)

    def describe(self) -> "list[str]":
        """Validity-range lines for every entry."""
        return [e.describe() for e in self.entries]


class RuntimeScheduler:
    """Select-or-compute runtime policy over a schedule table.

    Parameters
    ----------
    problem_factory:
        Callable ``(p_max, p_min) -> SchedulingProblem`` building the
        workload for an environment (the rover model's power table
        varies with temperature, so the factory owns that mapping).
    options:
        Scheduler options used on table misses.
    """

    def __init__(self, problem_factory, options=None, reprofile=None):
        self.problem_factory = problem_factory
        self.options = options or SchedulerOptions()
        self.reprofile = reprofile
        self.table = ScheduleTable()
        self.misses = 0
        self.hits = 0

    def precompute(self, p_max: float, p_min: float,
                   label: str = "") -> ScheduleEntry:
        """Force-compute and store a schedule for an environment.

        This is the paper's deployment model: the design tool computes
        one schedule per anticipated operating case (the rover's
        best/typical/worst) *before* the mission; the runtime then only
        selects.  Unlike :meth:`schedule_for`, an existing valid entry
        does not suppress the computation — a conservative early entry
        must not shadow the faster schedules the richer environments
        admit.
        """
        problem = self.problem_factory(p_max, p_min)
        result = PowerAwareScheduler(self.options).solve(problem)
        label = label or f"precomputed@Pmax={p_max:g}/Pmin={p_min:g}"
        return self.table.add_result(label, result)

    def schedule_for(self, p_max: float, p_min: float) -> ScheduleEntry:
        """The schedule to run under the current environment.

        Reuses a stored schedule when one is valid (the common case as
        the environment drifts within a validity range); otherwise
        computes a new power-aware schedule, stores it, and returns it.
        """
        entry = self.table.select(p_max, p_min,
                                  reprofile=self.reprofile)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        problem = self.problem_factory(p_max, p_min)
        try:
            result = PowerAwareScheduler(self.options).solve(problem)
        except SchedulingFailure as exc:
            raise SchedulingFailure(
                f"runtime scheduler miss at (P_max={p_max:g}, "
                f"P_min={p_min:g}) and no schedule could be computed: "
                f"{exc}") from exc
        label = f"computed@Pmax={p_max:g}/Pmin={p_min:g}"
        return self.table.add_result(label, result)
